"""Tests for HFHT: search spaces, partitioning, algorithms, schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import hfht, hwsim


@pytest.fixture(scope="module")
def space():
    return hfht.pointnet_search_space()


@pytest.fixture(scope="module")
def workload():
    return hwsim.get_workload("pointnet_cls")


class TestSearchSpace:
    def test_paper_spaces_have_eight_hyperparameters(self):
        assert len(hfht.pointnet_search_space()) == 8
        assert len(hfht.mobilenet_search_space()) == 8

    def test_fusible_infusible_split(self, space):
        assert set(space.infusible_names()) == {"batch_size",
                                                "feature_transform"}
        assert "lr" in space.fusible_names()

    def test_sampling_respects_ranges(self, space):
        rng = np.random.default_rng(0)
        for config in space.sample_batch(20, rng):
            assert 1e-4 <= config["lr"] <= 1e-2
            assert config["batch_size"] in (8, 16, 32)
            assert isinstance(config["feature_transform"], (bool, np.bool_))

    def test_log_scale_sampling_spreads_orders_of_magnitude(self):
        hp = hfht.HyperParameter("lr", True, 1e-5, 1e-1, log_scale=True)
        rng = np.random.default_rng(0)
        values = [hp.sample(rng) for _ in range(200)]
        assert min(values) < 1e-4 and max(values) > 1e-2

    def test_invalid_hyperparameter_definition(self):
        with pytest.raises(ValueError):
            hfht.HyperParameter("x", True)
        with pytest.raises(ValueError):
            hfht.HyperParameter("x", True, 0.0, 1.0, choices=(1, 2))

    def test_duplicate_names_rejected(self):
        hp = hfht.HyperParameter("lr", True, 0.0, 1.0)
        with pytest.raises(ValueError):
            hfht.SearchSpace([hp, hp])


class TestPartitioning:
    def test_partition_groups_by_infusible_values(self, space):
        rng = np.random.default_rng(1)
        configs = space.sample_batch(40, rng)
        partitions = hfht.partition_and_fuse(configs, space)
        assert sum(p.num_models for p in partitions) == 40
        for part in partitions:
            infusible = dict(part.infusible_values)
            for config in part.configs:
                for name, value in infusible.items():
                    assert config[name] == value

    def test_partition_respects_max_fusion(self, space):
        rng = np.random.default_rng(2)
        configs = space.sample_batch(50, rng)
        partitions = hfht.partition_and_fuse(configs, space, max_fusion=4)
        assert all(p.num_models <= 4 for p in partitions)

    def test_unfuse_and_reorder_restores_original_order(self, space):
        rng = np.random.default_rng(3)
        configs = space.sample_batch(12, rng)
        partitions = hfht.partition_and_fuse(configs, space)
        results = [[float(i) for i in part.original_indices]
                   for part in partitions]
        restored = hfht.unfuse_and_reorder(partitions, results)
        assert restored == [float(i) for i in range(12)]

    def test_unfuse_validates_result_counts(self, space):
        base = space.sample(np.random.default_rng(0))
        configs = [dict(base, lr=lr) for lr in (1e-4, 1e-3, 1e-2)]
        partitions = hfht.partition_and_fuse(configs, space)
        assert partitions[0].num_models == 3
        with pytest.raises(ValueError):
            hfht.unfuse_and_reorder(partitions, [[1.0]] * len(partitions))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 30))
    def test_property_partitions_cover_all_configs(self, count):
        space = hfht.pointnet_search_space()
        configs = space.sample_batch(count, np.random.default_rng(count))
        partitions = hfht.partition_and_fuse(configs, space, max_fusion=5)
        indices = sorted(i for p in partitions for i in p.original_indices)
        assert indices == list(range(count))


class TestAlgorithms:
    def test_random_search_proposes_exact_budget(self, space):
        algo = hfht.RandomSearch(space, total_sets=10, epochs_per_set=3)
        trials = algo.propose()
        assert len(trials) == 10
        assert all(t.epochs == 3 for t in trials)
        algo.update(trials, [0.1] * 10)
        assert algo.finished()

    def test_random_search_tracks_best(self, space):
        algo = hfht.RandomSearch(space, total_sets=5, epochs_per_set=1)
        trials = algo.propose()
        scores = [0.1, 0.9, 0.3, 0.2, 0.4]
        algo.update(trials, scores)
        best_config, best_score = algo.best
        assert best_score == pytest.approx(0.9)
        assert best_config == trials[1].config

    def test_hyperband_successive_halving_shrinks_population(self, space):
        algo = hfht.Hyperband(space, max_epochs=9, eta=3, seed=0)
        first = algo.propose()
        algo.update(first, list(np.linspace(0, 1, len(first))))
        second = algo.propose()
        assert len(second) < len(first)
        assert second[0].epochs > first[0].epochs

    def test_hyperband_survivors_are_top_scorers(self, space):
        algo = hfht.Hyperband(space, max_epochs=9, eta=3, seed=1)
        first = algo.propose()
        scores = list(np.linspace(0, 1, len(first)))
        algo.update(first, scores)
        second = algo.propose()
        best_first = first[int(np.argmax(scores))].config
        assert any(c.config == best_first for c in second)

    def test_hyperband_terminates(self, space):
        algo = hfht.Hyperband(space, max_epochs=9, eta=3, skip_last=1, seed=2)
        rounds = 0
        while not algo.finished() and rounds < 50:
            trials = algo.propose()
            algo.update(trials, [0.5] * len(trials))
            rounds += 1
        assert algo.finished()

    def test_surrogate_prefers_good_lr_and_more_epochs(self):
        good = {"lr": 1e-3, "adam_beta1": 0.9, "adam_beta2": 0.99,
                "weight_decay": 0.0, "lr_decay_factor": 0.5}
        bad = dict(good, lr=9e-3, weight_decay=0.5)
        assert hfht.surrogate_accuracy("t", good, 20) > \
            hfht.surrogate_accuracy("t", bad, 20)
        assert hfht.surrogate_accuracy("t", good, 20) > \
            hfht.surrogate_accuracy("t", good, 2)


class TestSchedulersAndTuner:
    def _run(self, mode, workload, space, total_sets=12, seed=0):
        algo = hfht.RandomSearch(space, total_sets=total_sets,
                                 epochs_per_set=2, seed=seed)
        sched = hfht.JobScheduler(workload, hwsim.V100, space, mode=mode,
                                  precision="amp")
        return hfht.HFHT(algo, sched).run()

    def test_all_scheduler_modes_run(self, workload, space):
        outcomes = {mode: self._run(mode, workload, space)
                    for mode in ("serial", "concurrent", "mps", "hfta")}
        for outcome in outcomes.values():
            assert outcome.total_trials == 12
            assert outcome.total_gpu_hours > 0
            assert outcome.best_config is not None

    def test_hfta_scheduler_cheapest(self, workload, space):
        """Figure 8: the HFTA scheduler needs the fewest GPU hours."""
        serial = self._run("serial", workload, space)
        hfta_run = self._run("hfta", workload, space)
        mps = self._run("mps", workload, space)
        assert hfta_run.total_gpu_hours < mps.total_gpu_hours
        assert hfta_run.total_gpu_hours < serial.total_gpu_hours
        assert serial.total_gpu_hours / hfta_run.total_gpu_hours > 1.5

    def test_results_identical_across_schedulers(self, workload, space):
        """The scheduler changes cost, never the tuning outcome."""
        serial = self._run("serial", workload, space, seed=7)
        fused = self._run("hfta", workload, space, seed=7)
        assert serial.best_score == pytest.approx(fused.best_score, rel=1e-9)
        assert serial.best_config == fused.best_config

    def test_hfta_launches_fewer_jobs(self, workload, space):
        serial = self._run("serial", workload, space)
        fused = self._run("hfta", workload, space)
        assert fused.total_jobs_launched < serial.total_jobs_launched

    def test_hyperband_with_hfta_scheduler(self, workload, space):
        algo = hfht.Hyperband(space, max_epochs=9, eta=3, skip_last=1, seed=0)
        sched = hfht.JobScheduler(workload, hwsim.V100, space, mode="hfta",
                                  precision="amp")
        outcome = hfht.HFHT(algo, sched).run()
        assert outcome.total_gpu_hours > 0
        assert outcome.algorithm == "hyperband"

    def test_random_search_benefits_more_than_hyperband(self, workload, space):
        """Paper Section 5.4: random search is more HFTA-friendly."""
        def saving(algo_factory):
            costs = {}
            for mode in ("serial", "hfta"):
                sched = hfht.JobScheduler(workload, hwsim.V100, space,
                                          mode=mode, precision="amp")
                costs[mode] = hfht.HFHT(algo_factory(), sched).run().total_gpu_hours
            return costs["serial"] / costs["hfta"]

        rs_saving = saving(lambda: hfht.RandomSearch(space, 16, 2, seed=3))
        hb_saving = saving(lambda: hfht.Hyperband(space, max_epochs=9, eta=3,
                                                  skip_last=1, seed=3))
        assert rs_saving > hb_saving

    def test_invalid_scheduler_mode(self, workload, space):
        with pytest.raises(ValueError):
            hfht.JobScheduler(workload, hwsim.V100, space, mode="bogus")
