"""Integration tests: end-to-end fused training equals independent training.

This is the reproduction of the paper's convergence claim (Section 3
"Convergence", Appendix D / Figure 11): because every HFTA transformation is
mathematically equivalent, the per-iteration loss curve of each model inside
a fused array is identical (up to floating-point noise) to the curve the same
model produces when trained alone.
"""

import numpy as np

from repro import nn, optim as serial_optim, hfta
from repro.data import DataLoader, SyntheticCIFAR10
from repro.hfta import ops as hops, optim as fused_optim
from repro.models import ResNet18, PointNetCls
from repro.nn import functional as F

B = 2
LRS = [5e-4, 2e-3]


def train_serial_resnets(steps, batches):
    models = [ResNet18(num_classes=4, width=0.125,
                       generator=np.random.default_rng(500 + b))
              for b in range(B)]
    optimizers = [serial_optim.Adadelta(m.parameters(), lr=LRS[b])
                  for b, m in enumerate(models)]
    curves = [[] for _ in range(B)]
    for step in range(steps):
        x, y = batches[step]
        for b, model in enumerate(models):
            optimizers[b].zero_grad()
            loss = F.cross_entropy(model(nn.tensor(x)), y)
            loss.backward()
            optimizers[b].step()
            curves[b].append(loss.item())
    return models, curves


def train_fused_resnets(steps, batches, serial_init):
    fused = ResNet18(num_classes=4, num_models=B, width=0.125)
    hfta.load_from_unfused(fused, serial_init)
    optimizer = fused_optim.Adadelta(fused.parameters(), num_models=B, lr=LRS)
    criterion = hfta.FusedCrossEntropyLoss(B)
    curves = [[] for _ in range(B)]
    for step in range(steps):
        x, y = batches[step]
        optimizer.zero_grad()
        fused_x = fused.fuse_inputs([nn.tensor(x)] * B)
        logits = fused(fused_x)
        loss = criterion(logits, np.stack([y] * B))
        loss.backward()
        optimizer.step()
        per_model = criterion.per_model(logits, np.stack([y] * B))
        for b in range(B):
            curves[b].append(float(per_model[b]))
    return fused, curves


class TestConvergenceEquivalence:
    def test_resnet_fused_loss_curves_overlap_serial(self):
        """Figure 11: fused and serial training-loss curves coincide."""
        dataset = SyntheticCIFAR10(num_samples=64, image_size=16,
                                   num_classes=4, seed=0)
        loader = DataLoader(dataset, batch_size=16, shuffle=True, seed=0)
        batches = [next(iter(loader)) for _ in range(1)]
        batches = batches * 6  # re-use the same batches for both runs
        steps = 6

        serial_init = [ResNet18(num_classes=4, width=0.125,
                                generator=np.random.default_rng(500 + b))
                       for b in range(B)]
        serial_models, serial_curves = train_serial_resnets(steps, batches)
        _, fused_curves = train_fused_resnets(steps, batches, serial_init)

        for b in range(B):
            np.testing.assert_allclose(fused_curves[b], serial_curves[b],
                                       rtol=5e-3, atol=5e-3)

    def test_fused_weights_match_serial_after_training(self):
        dataset = SyntheticCIFAR10(num_samples=32, image_size=16,
                                   num_classes=4, seed=1)
        loader = DataLoader(dataset, batch_size=16, seed=1)
        batch = next(iter(loader))
        batches = [batch] * 4

        serial_init = [ResNet18(num_classes=4, width=0.125,
                                generator=np.random.default_rng(500 + b))
                       for b in range(B)]
        serial_models, _ = train_serial_resnets(4, batches)
        fused, _ = train_fused_resnets(4, batches, serial_init)

        for b in range(B):
            template = ResNet18(num_classes=4, width=0.125)
            hfta.export_to_unfused(fused, b, template)
            for (name, p_serial), (_, p_fused) in zip(
                    serial_models[b].named_parameters(),
                    template.named_parameters()):
                np.testing.assert_allclose(p_fused.data, p_serial.data,
                                           rtol=1e-3, atol=1e-4,
                                           err_msg=f"model {b} param {name}")

    def test_pointnet_array_trains_all_models(self):
        """A fused PointNet array reduces every model's loss simultaneously."""
        rng = np.random.default_rng(0)
        fused = PointNetCls(num_classes=4, num_models=B, width=0.125,
                            dropout=0.0, input_transform=False)
        optimizer = fused_optim.Adam(fused.parameters(), num_models=B,
                                     lr=[1e-3, 3e-3])
        criterion = hfta.FusedNLLLoss(B)
        x = rng.standard_normal((8, 3, 32)).astype(np.float32)
        y = rng.integers(0, 4, size=8)
        first, last = None, None
        for step in range(10):
            optimizer.zero_grad()
            out = fused(fused.fuse_inputs([nn.tensor(x)] * B))
            loss = criterion(out, np.stack([y] * B))
            loss.backward()
            optimizer.step()
            per_model = criterion.per_model(out, np.stack([y] * B))
            if first is None:
                first = per_model
            last = per_model
        assert np.all(last < first)

    def test_different_lrs_diverge_models_within_array(self):
        """Models in one array follow different trajectories when their
        hyper-parameters differ (they are independent jobs, not an ensemble)."""
        fused = hops.Linear(B, 4, 2)
        initial = fused.weight.data.copy()
        opt = fused_optim.SGD(fused.parameters(), num_models=B,
                              lr=[0.0, 0.5])
        x = nn.randn(B, 6, 4)
        (fused(x) ** 2).sum().backward()
        opt.step()
        np.testing.assert_array_equal(fused.weight.data[0], initial[0])
        assert not np.allclose(fused.weight.data[1], initial[1])
