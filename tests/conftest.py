"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(1234)


def numerical_gradient(fn, tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn()`` w.r.t. ``tensor`` (float64)."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn()
        flat[i] = original - eps
        down = fn()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad
