"""Optimizer snapshot/restore round-trips under eviction, and the
per-slot state primitives the durable checkpoint layer is built on.

``snapshot_optimizer`` / ``restore_optimizer`` were until now exercised
only indirectly (via ``test_refusion.py``'s split/merge suites); these
tests pin their contract directly — including the interaction with
*eviction* (a snapshot taken before the array narrows cannot silently
restore into the narrowed optimizer) — and the newer
``export_slot_state`` / ``load_slot_state`` pair, whose bit-exactness is
what makes crash recovery (:mod:`repro.runtime.checkpoint`) preserve the
serial-equivalence guarantee.
"""

import numpy as np
import pytest

from repro import hfta, nn
from repro.hfta import ops as hops
from repro.hfta.optim import (Adadelta, Adam, AdamW, SGD, export_slot_state,
                              load_slot_state, restore_optimizer,
                              snapshot_optimizer, split_optimizer)

B = 4


def build_fused(num_models=B):
    return nn.Sequential(
        hops.Linear(num_models, 6, 5),
        hops.ReLU(num_models),
        hops.Linear(num_models, 5, 2))


def make_optimizer(kind, fused, num_models, lr):
    if kind == "adam":
        return Adam(fused.parameters(), num_models=num_models, lr=lr)
    if kind == "adamw":
        return AdamW(fused.parameters(), num_models=num_models, lr=lr)
    if kind == "sgd":
        return SGD(fused.parameters(), num_models=num_models, lr=lr,
                   momentum=0.9)
    if kind == "adadelta":
        return Adadelta(fused.parameters(), num_models=num_models, lr=lr)
    raise ValueError(kind)


def fake_step(fused, optimizer, seed=7):
    rng = np.random.default_rng(seed)
    for p in fused.parameters():
        p.grad = rng.standard_normal(p.shape).astype(np.float32)
    optimizer.step()


def optimizer_state_by_position(optimizer):
    """Position-keyed deep copy of the state (ids change across restores)."""
    params = [p for g in optimizer.param_groups for p in g["params"]]
    return {i: {k: np.copy(v) for k, v in
                (optimizer.state.get(id(p)) or {}).items()}
            for i, p in enumerate(params)}


KINDS = ("adam", "adamw", "sgd", "adadelta")


# --------------------------------------------------------------------- #
class TestSnapshotRestoreRoundTrip:
    @pytest.mark.parametrize("kind", KINDS)
    def test_restore_undoes_further_stepping(self, kind):
        """Snapshot, keep training, restore: the optimizer state must be
        bit-identical to the snapshot instant."""
        fused = build_fused()
        opt = make_optimizer(kind, fused, B, [1e-3 * (b + 1) for b in
                                              range(B)])
        fake_step(fused, opt, seed=1)
        snapshot = snapshot_optimizer(opt)
        before = optimizer_state_by_position(opt)

        fake_step(fused, opt, seed=2)       # state diverges...
        fake_step(fused, opt, seed=3)
        restore_optimizer(opt, snapshot)    # ...and is rolled back
        after = optimizer_state_by_position(opt)
        assert set(before) == set(after)
        for pos, state in before.items():
            assert set(state) == set(after[pos])
            for key, value in state.items():
                np.testing.assert_array_equal(
                    after[pos][key], value, err_msg=f"{kind} [{pos}] {key}")

    @pytest.mark.parametrize("kind", KINDS)
    def test_stepping_after_restore_is_bit_identical(self, kind):
        """The eviction rollback story: two identical optimizers, one
        snapshot/restored mid-way, must keep producing identical updates."""
        fused_a, fused_b = build_fused(), build_fused()
        for p_a, p_b in zip(fused_a.parameters(), fused_b.parameters()):
            p_b.data[...] = p_a.data
        opt_a = make_optimizer(kind, fused_a, B, [1e-3] * B)
        opt_b = make_optimizer(kind, fused_b, B, [1e-3] * B)
        fake_step(fused_a, opt_a, seed=1)
        fake_step(fused_b, opt_b, seed=1)

        snapshot = snapshot_optimizer(opt_b)
        fake_step(fused_b, opt_b, seed=9)   # a transition that fails...
        restore_optimizer(opt_b, snapshot)  # ...rolls the optimizer back
        for p_a, p_b in zip(fused_a.parameters(), fused_b.parameters()):
            p_b.data[...] = p_a.data        # (the model half, via
                                            #  snapshot_array in the engine)
        fake_step(fused_a, opt_a, seed=2)
        fake_step(fused_b, opt_b, seed=2)
        for (name, p_a), (_, p_b) in zip(fused_a.named_parameters(),
                                         fused_b.named_parameters()):
            np.testing.assert_array_equal(p_b.data, p_a.data,
                                          err_msg=f"{kind} {name}")

    def test_restore_into_evicted_width_is_rejected(self):
        """Eviction narrows the optimizer; a pre-eviction snapshot must be
        refused, not silently misapplied to the wrong slots."""
        fused = build_fused()
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)
        snapshot = snapshot_optimizer(opt)

        narrowed = hfta.split_fused(fused, [0, 2])      # slots 1, 3 evicted
        opt_narrow = split_optimizer(opt, narrowed.parameters(), [0, 2])
        with pytest.raises(ValueError, match="num_models"):
            restore_optimizer(opt_narrow, snapshot)

    def test_snapshot_survives_eviction_of_other_slots(self):
        """A snapshot taken *of the narrowed optimizer* after eviction
        restores exactly, and its arrays are copies — further stepping of
        the live optimizer must not mutate the snapshot."""
        fused = build_fused()
        opt = make_optimizer("adam", fused, B,
                             [1e-3 * (b + 1) for b in range(B)])
        fake_step(fused, opt, seed=1)
        narrowed = hfta.split_fused(fused, [1, 3])
        opt_narrow = split_optimizer(opt, narrowed.parameters(), [1, 3])

        snapshot = snapshot_optimizer(opt_narrow)
        frozen = {pos: {k: np.copy(v) for k, v in st.items()}
                  for pos, st in snapshot["state"].items()}
        fake_step(narrowed, opt_narrow, seed=2)
        for pos, st in snapshot["state"].items():
            for key, value in st.items():
                np.testing.assert_array_equal(value, frozen[pos][key])
        restore_optimizer(opt_narrow, snapshot)
        # per-model lr of the kept slots survived both transitions
        np.testing.assert_allclose(opt_narrow.param_groups[0]["lr"],
                                   [2e-3, 4e-3])


# --------------------------------------------------------------------- #
class TestSlotStatePrimitives:
    @pytest.mark.parametrize("kind", KINDS)
    def test_export_matches_split_optimizer_slot(self, kind):
        """export_slot_state(opt, i) must equal what split_optimizer would
        hand slot i — the two per-slot paths cannot disagree."""
        fused = build_fused()
        opt = make_optimizer(kind, fused, B, [1e-3] * B)
        fake_step(fused, opt)
        for index in (0, 2, B - 1):
            exported = export_slot_state(opt, index)
            narrowed = hfta.split_fused(fused, [index])
            opt_slot = split_optimizer(opt, narrowed.parameters(), [index])
            reference = optimizer_state_by_position(opt_slot)
            assert set(exported) == {pos for pos, st in reference.items()
                                     if st}
            for pos, state in exported.items():
                for key, value in state.items():
                    np.testing.assert_array_equal(
                        value, reference[pos][key][0],
                        err_msg=f"{kind} slot {index} [{pos}] {key}")

    @pytest.mark.parametrize("kind", KINDS)
    def test_load_into_fresh_optimizer_steps_bit_identically(self, kind):
        """The crash-recovery invariant at primitive level: export a
        slot, inject it into a *fresh* optimizer (lazy zero state), and
        further steps of that slot are bit-identical to never leaving."""
        fused = build_fused()
        opt = make_optimizer(kind, fused, B, [1e-3] * B)
        fake_step(fused, opt, seed=1)
        index = 2
        exported = export_slot_state(opt, index)

        resumed = build_fused()
        for p_new, p_old in zip(resumed.parameters(), fused.parameters()):
            p_new.data[...] = p_old.data
        opt_new = make_optimizer(kind, resumed, B, [1e-3] * B)
        load_slot_state(opt_new, index, exported)

        fake_step(fused, opt, seed=2)
        fake_step(resumed, opt_new, seed=2)
        for (name, p_old), (_, p_new) in zip(fused.named_parameters(),
                                             resumed.named_parameters()):
            np.testing.assert_array_equal(
                p_new.data[index], p_old.data[index],
                err_msg=f"{kind} {name} slot {index}")

    def test_load_leaves_other_slots_at_lazy_init(self):
        """Injected zeros must equal lazy initialization: slots that never
        stepped behave exactly like a brand-new optimizer's."""
        fused = build_fused()
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt, seed=1)
        exported = export_slot_state(opt, 1)

        resumed = build_fused()
        reference = build_fused()
        for p_r, p_ref, p_old in zip(resumed.parameters(),
                                     reference.parameters(),
                                     fused.parameters()):
            p_r.data[...] = p_old.data
            p_ref.data[...] = p_old.data
        opt_resumed = make_optimizer("adam", resumed, B, [1e-3] * B)
        opt_reference = make_optimizer("adam", reference, B, [1e-3] * B)
        load_slot_state(opt_resumed, 1, exported)

        fake_step(resumed, opt_resumed, seed=3)
        fake_step(reference, opt_reference, seed=3)
        for (name, p_r), (_, p_ref) in zip(resumed.named_parameters(),
                                           reference.named_parameters()):
            for slot in (0, 2, 3):      # every slot except the injected one
                np.testing.assert_array_equal(
                    p_r.data[slot], p_ref.data[slot],
                    err_msg=f"{name} slot {slot}")

    def test_out_of_range_inputs_rejected(self):
        fused = build_fused()
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)
        with pytest.raises(ValueError, match="out of range"):
            export_slot_state(opt, B)
        with pytest.raises(ValueError, match="out of range"):
            load_slot_state(opt, -1, {})
        with pytest.raises(ValueError, match="out of range"):
            load_slot_state(opt, 0, {99: {"step": np.zeros(())}})

    def test_shape_mismatch_rejected(self):
        fused = build_fused()
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)
        with pytest.raises(ValueError, match="shape"):
            load_slot_state(opt, 0, {0: {"exp_avg": np.zeros((9, 9))}})
