"""Re-fusion round trip: split_fused / merge_fused / snapshot are lossless.

The elastic array lifecycle rests on one property: slicing a fused array
apart and concatenating the pieces back reconstructs it *exactly* — in
parameters, buffers, and per-slot optimizer state — for every fusible
operator family.  These tests check

    merge_fused(split_fused(x, A), split_fused(x, B)) == x

for complementary contiguous partitions ``A``/``B`` (and slot-level
equality for arbitrary index subsets), across conv / linear / embedding /
attention / norm / dropout arrays, plus the matching optimizer-state
primitives for Adam / AdamW / SGD / Adadelta, plus snapshot/restore.
"""

import numpy as np
import pytest

from repro import hfta, nn
from repro.hfta import ops as hops
from repro.hfta.optim import (Adadelta, Adam, AdamW, SGD, merge_optimizers,
                              restore_optimizer, snapshot_optimizer,
                              split_optimizer)

B = 4


def build_family(family, num_models=B):
    """A small fused model exercising one operator family."""
    if family == "conv":
        return nn.Sequential(
            hops.Conv2d(num_models, 3, 4, 3, padding=1),
            hops.BatchNorm2d(num_models, 4),
            hops.ReLU(num_models))
    if family == "linear":
        return nn.Sequential(
            hops.Linear(num_models, 6, 5),
            hops.ReLU(num_models),
            hops.Linear(num_models, 5, 2))
    if family == "embedding":
        return nn.Sequential(hops.Embedding(num_models, 11, 6))
    if family == "attention":
        return nn.Sequential(
            hops.MultiheadAttention(num_models, 8, 2))
    if family == "norm":
        return nn.Sequential(hops.LayerNorm(num_models, 6))
    if family == "dropout":
        return nn.Sequential(
            hops.Linear(num_models, 6, 6),
            hops.Dropout(num_models, p=0.5))
    raise ValueError(family)


FAMILIES = ("conv", "linear", "embedding", "attention", "norm", "dropout")


def randomize(fused, seed=0):
    """Distinct values everywhere — fresh models hide indexing bugs."""
    rng = np.random.default_rng(seed)
    for _, p in fused.named_parameters():
        p.data[...] = rng.standard_normal(p.shape).astype(p.data.dtype)
    for name, buf in fused.named_buffers():
        if buf is not None and np.issubdtype(buf.dtype, np.floating):
            values = rng.standard_normal(buf.shape).astype(buf.dtype)
            # variances must stay positive (batch norm takes their sqrt)
            buf[...] = np.abs(values) + 0.5 if "var" in name else values
    return fused


def assert_arrays_equal(a, b, context=""):
    for (name, p_a), (_, p_b) in zip(a.named_parameters(),
                                     b.named_parameters()):
        np.testing.assert_array_equal(p_a.data, p_b.data,
                                      err_msg=f"{context} parameter {name}")
    for (name, b_a), (_, b_b) in zip(a.named_buffers(), b.named_buffers()):
        np.testing.assert_array_equal(b_a, b_b,
                                      err_msg=f"{context} buffer {name}")


# --------------------------------------------------------------------- #
class TestSplitMergeRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_contiguous_split_merge_is_identity(self, family):
        fused = randomize(build_family(family))
        left = hfta.split_fused(fused, [0, 1])
        right = hfta.split_fused(fused, [2, 3])
        merged = hfta.merge_fused(left, right)
        assert hfta.fused_array_width(merged) == B
        assert_arrays_equal(fused, merged, family)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_uneven_split_merge_is_identity(self, family):
        fused = randomize(build_family(family), seed=1)
        merged = hfta.merge_fused(hfta.split_fused(fused, [0]),
                                  hfta.split_fused(fused, [1, 2, 3]))
        assert_arrays_equal(fused, merged, family)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_arbitrary_subset_selects_the_right_slots(self, family):
        """split_fused([1, 3]) slot k must equal the original slot [1, 3][k]
        — verified through export_to_unfused against the original."""
        fused = randomize(build_family(family), seed=2)
        sub = hfta.split_fused(fused, [1, 3])
        assert hfta.fused_array_width(sub) == 2
        for new_slot, old_slot in enumerate([1, 3]):
            for (name, p_sub), (_, p_full) in zip(sub.named_parameters(),
                                                  fused.named_parameters()):
                np.testing.assert_array_equal(
                    p_sub.data[new_slot], p_full.data[old_slot],
                    err_msg=f"{family} {name} slot {old_slot}")

    def test_split_preserves_the_input_array(self):
        fused = randomize(build_family("conv"))
        before = hfta.snapshot_array(fused)
        hfta.split_fused(fused, [0, 2])
        for name, value in hfta.snapshot_array(fused).items():
            np.testing.assert_array_equal(value, before[name], err_msg=name)

    def test_split_forward_matches_original_slots(self):
        """The narrowed array computes exactly what the kept slots computed
        inside the full array (channel-folded conv + batchnorm layout)."""
        fused = randomize(build_family("conv"))
        fused.eval()
        keep = [1, 2]
        sub = hfta.split_fused(fused, keep)
        sub.eval()
        rng = np.random.default_rng(3)
        per_model = [rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
                     for _ in range(B)]
        full_out = fused(nn.tensor(np.concatenate(per_model, axis=1)))
        sub_out = sub(nn.tensor(np.concatenate(
            [per_model[i] for i in keep], axis=1)))
        # channel-folded output: model b owns channels [b*4, (b+1)*4)
        full = full_out.data.reshape(2, B, 4, 6, 6)
        narrow = sub_out.data.reshape(2, len(keep), 4, 6, 6)
        for new_slot, old_slot in enumerate(keep):
            np.testing.assert_allclose(narrow[:, new_slot],
                                       full[:, old_slot], rtol=1e-6)

    def test_invalid_indices_rejected(self):
        fused = build_family("linear")
        with pytest.raises(ValueError, match="at least one"):
            hfta.split_fused(fused, [])
        with pytest.raises(ValueError, match="out of range"):
            hfta.split_fused(fused, [B])
        with pytest.raises(ValueError, match="duplicates"):
            hfta.split_fused(fused, [1, 1])

    def test_merge_rejects_structural_mismatch(self):
        with pytest.raises(ValueError, match="cannot merge"):
            hfta.merge_fused(build_family("linear"), build_family("conv"))
        narrow = nn.Sequential(hops.Linear(2, 6, 5), hops.ReLU(2),
                               hops.Linear(2, 5, 3))   # different out dim
        with pytest.raises(ValueError, match="per-slot shape"):
            hfta.merge_fused(build_family("linear"), narrow)


# --------------------------------------------------------------------- #
def make_optimizer(kind, fused, num_models, lr):
    if kind == "adam":
        return Adam(fused.parameters(), num_models=num_models, lr=lr)
    if kind == "adamw":
        return AdamW(fused.parameters(), num_models=num_models, lr=lr)
    if kind == "sgd":
        return SGD(fused.parameters(), num_models=num_models, lr=lr,
                   momentum=0.9)
    if kind == "adadelta":
        return Adadelta(fused.parameters(), num_models=num_models, lr=lr)
    raise ValueError(kind)


def fake_step(fused, optimizer, seed=7):
    rng = np.random.default_rng(seed)
    for p in fused.parameters():
        p.grad = rng.standard_normal(p.shape).astype(np.float32)
    optimizer.step()


class TestOptimizerRoundTrip:
    @pytest.mark.parametrize("kind", ("adam", "adamw", "sgd", "adadelta"))
    @pytest.mark.parametrize("family", ("conv", "linear"))
    def test_split_merge_preserves_state_and_vectors(self, kind, family):
        fused = randomize(build_family(family))
        lr = [1e-3 * (b + 1) for b in range(B)]
        opt = make_optimizer(kind, fused, B, lr)
        fake_step(fused, opt)

        left, right = hfta.split_fused(fused, [0, 1]), \
            hfta.split_fused(fused, [2, 3])
        opt_left = split_optimizer(opt, left.parameters(), [0, 1])
        opt_right = split_optimizer(opt, right.parameters(), [2, 3])
        merged = hfta.merge_fused(left, right)
        opt_merged = merge_optimizers(opt_left, opt_right,
                                      merged.parameters())

        assert opt_merged.num_models == B
        np.testing.assert_array_equal(opt_merged.param_groups[0]["lr"],
                                      opt.param_groups[0]["lr"])
        for p_old, p_new in zip(fused.parameters(), merged.parameters()):
            st_old = opt.state.get(id(p_old)) or {}
            st_new = opt_merged.state.get(id(p_new)) or {}
            assert set(st_old) == set(st_new)
            for key, value in st_old.items():
                np.testing.assert_array_equal(
                    value, st_new[key], err_msg=f"{kind} state {key}")

    def test_further_training_is_bit_identical_after_round_trip(self):
        """The acid test: stepping the round-tripped array produces exactly
        the parameters stepping the original would."""
        fused = randomize(build_family("linear"))
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)

        merged = hfta.merge_fused(hfta.split_fused(fused, [0, 1]),
                                  hfta.split_fused(fused, [2, 3]))
        opt_merged = merge_optimizers(
            split_optimizer(opt, hfta.split_fused(fused, [0, 1]).parameters(),
                            [0, 1]),
            split_optimizer(opt, hfta.split_fused(fused, [2, 3]).parameters(),
                            [2, 3]),
            merged.parameters())
        # same grads -> same update on both sides
        rng = np.random.default_rng(11)
        grads = [rng.standard_normal(p.shape).astype(np.float32)
                 for p in fused.parameters()]
        for p, g in zip(fused.parameters(), grads):
            p.grad = g
        for p, g in zip(merged.parameters(), grads):
            p.grad = g
        opt.step()
        opt_merged.step()
        assert_arrays_equal(fused, merged, "post-round-trip step")

    def test_merge_with_fresh_optimizer_matches_lazy_initialization(self):
        """Admitting a never-stepped sub-array: its zero-filled state slots
        must behave exactly like lazy initialization (step counter 0)."""
        fused = randomize(build_family("linear"))
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)
        fake_step(fused, opt, seed=8)

        stepped = hfta.split_fused(fused, [0, 1])
        opt_stepped = split_optimizer(opt, stepped.parameters(), [0, 1])
        fresh = randomize(build_family("linear", num_models=2), seed=9)
        opt_fresh = make_optimizer("adam", fresh, 2, [5e-3, 6e-3])

        merged = hfta.merge_fused(stepped, fresh)
        opt_merged = merge_optimizers(opt_stepped, opt_fresh,
                                      merged.parameters())
        first = next(iter(merged.parameters()))
        assert opt_merged.state[id(first)]["step"].tolist() == [2, 2, 0, 0]

        # one merged step == one step of each half trained separately
        rng = np.random.default_rng(12)
        grads = [rng.standard_normal(p.shape).astype(np.float32)
                 for p in merged.parameters()]
        for p, g in zip(merged.parameters(), grads):
            p.grad = g
        for p, g in zip(stepped.parameters(), grads):
            p.grad = g[:2]
        for p, g in zip(fresh.parameters(), grads):
            p.grad = g[2:]
        opt_merged.step()
        opt_stepped.step()
        opt_fresh.step()
        for p_m, p_s, p_f in zip(merged.parameters(), stepped.parameters(),
                                 fresh.parameters()):
            np.testing.assert_array_equal(p_m.data[:2], p_s.data)
            np.testing.assert_array_equal(p_m.data[2:], p_f.data)

    def test_merge_rejects_different_optimizer_classes(self):
        fused = build_family("linear")
        a = Adam(hfta.split_fused(fused, [0, 1]).parameters(), num_models=2)
        b = SGD(hfta.split_fused(fused, [2, 3]).parameters(), num_models=2)
        with pytest.raises(ValueError, match="different classes"):
            merge_optimizers(a, b, fused.parameters())


# --------------------------------------------------------------------- #
class TestSnapshotRestore:
    def test_array_snapshot_rolls_back_parameters_and_buffers(self):
        fused = randomize(build_family("conv"))
        snap = hfta.snapshot_array(fused)
        randomize(fused, seed=99)     # clobber everything
        hfta.restore_array(fused, snap)
        for name, value in hfta.snapshot_array(fused).items():
            np.testing.assert_array_equal(value, snap[name], err_msg=name)

    def test_optimizer_snapshot_rolls_back_state(self):
        fused = randomize(build_family("linear"))
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)
        snap = snapshot_optimizer(opt)
        fake_step(fused, opt, seed=13)   # moves state further
        restore_optimizer(opt, snap)
        first = next(iter(fused.parameters()))
        assert opt.state[id(first)]["step"].tolist() == [1] * B
        for i, st in snap["state"].items():
            p = fused.parameters()[i]
            for key, value in st.items():
                np.testing.assert_array_equal(opt.state[id(p)][key], value,
                                              err_msg=f"state {key}")
