"""Fused optimizer / LR-scheduler / loss-scaling equivalence tests.

The central claim (paper Section 3 "Convergence", Appendix C/D): training B
models inside one fused array with per-model hyper-parameter vectors follows
exactly the same trajectory as training the B models independently.
"""

import numpy as np
import pytest

from repro import nn, optim as serial_optim, hfta
from repro.hfta import ops as hops, optim as fused_optim
from repro.nn import functional as F

B = 3
LRS = [1e-2, 5e-3, 2e-2]


def build_pair(seed_base=50):
    """B serial Linear models and the fused array initialized identically."""
    serial = [nn.Linear(6, 4, generator=np.random.default_rng(seed_base + b))
              for b in range(B)]
    fused = hops.Linear(B, 6, 4)
    for b, m in enumerate(serial):
        fused.load_model_weights(b, m.weight.data, m.bias.data)
    return serial, fused


def train_pair(serial_opts, fused_opt, serial, fused, steps=4, seed=0,
               fused_criterion=None):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        x = rng.standard_normal((5, 6)).astype(np.float32)
        t = rng.standard_normal((5, 4)).astype(np.float32)
        for b, model in enumerate(serial):
            serial_opts[b].zero_grad()
            F.mse_loss(model(nn.tensor(x)), t).backward()
            serial_opts[b].step()
        fused_opt.zero_grad()
        pred = fused(hops.fuse_batch([nn.tensor(x)] * B))
        criterion = fused_criterion or hfta.FusedMSELoss(B)
        criterion(pred, np.stack([t] * B)).backward()
        fused_opt.step()


def max_weight_divergence(serial, fused):
    worst = 0.0
    for b, model in enumerate(serial):
        w, bias = fused.export_model_weights(b)
        worst = max(worst, np.abs(model.weight.data - w).max(),
                    np.abs(model.bias.data - bias).max())
    return worst


class TestFusedOptimizerEquivalence:
    def test_adam_per_model_lrs_match_serial(self):
        serial, fused = build_pair()
        sopts = [serial_optim.Adam(m.parameters(), lr=LRS[b])
                 for b, m in enumerate(serial)]
        fopt = fused_optim.Adam(fused.parameters(), num_models=B, lr=LRS)
        train_pair(sopts, fopt, serial, fused)
        assert max_weight_divergence(serial, fused) < 1e-5

    def test_sgd_momentum_match_serial(self):
        serial, fused = build_pair(60)
        momenta = [0.0, 0.5, 0.9]
        sopts = [serial_optim.SGD(m.parameters(), lr=LRS[b],
                                  momentum=momenta[b])
                 for b, m in enumerate(serial)]
        fopt = fused_optim.SGD(fused.parameters(), num_models=B, lr=LRS,
                               momentum=momenta)
        train_pair(sopts, fopt, serial, fused)
        assert max_weight_divergence(serial, fused) < 1e-5

    def test_adadelta_match_serial(self):
        serial, fused = build_pair(70)
        sopts = [serial_optim.Adadelta(m.parameters(), lr=1.0)
                 for m in serial]
        fopt = fused_optim.Adadelta(fused.parameters(), num_models=B, lr=1.0)
        train_pair(sopts, fopt, serial, fused)
        assert max_weight_divergence(serial, fused) < 1e-5

    def test_adam_different_weight_decay_per_model(self):
        serial, fused = build_pair(80)
        wds = [0.0, 0.1, 0.3]
        sopts = [serial_optim.Adam(m.parameters(), lr=1e-2, weight_decay=wds[b])
                 for b, m in enumerate(serial)]
        fopt = fused_optim.Adam(fused.parameters(), num_models=B, lr=1e-2,
                                weight_decay=wds)
        train_pair(sopts, fopt, serial, fused)
        assert max_weight_divergence(serial, fused) < 1e-5

    def test_fused_param_shape_validation(self):
        bad = nn.Parameter(np.zeros((B + 1, 4)))
        with pytest.raises(ValueError):
            fused_optim.Adam([bad], num_models=B)

    def test_hyperparameter_vector_length_validation(self):
        _, fused = build_pair()
        with pytest.raises(ValueError):
            fused_optim.Adam(fused.parameters(), num_models=B, lr=[0.1, 0.2])

    def test_unfused_param_group_for_partial_fusion(self):
        """Partial fusion: unfused params update with their model's scalars."""
        _, fused = build_pair()
        extra = nn.Parameter(np.ones(4, dtype=np.float32))
        opt = fused_optim.SGD(fused.parameters(), num_models=B, lr=LRS)
        opt.add_unfused_param_group([extra], model_index=2)
        extra.grad = np.ones(4, dtype=np.float32)
        for p in fused.parameters():
            p.grad = np.zeros_like(p.data)
        opt.step()
        np.testing.assert_allclose(extra.data, 1.0 - LRS[2], rtol=1e-6)


class TestFusedSchedulers:
    def _fused_opt(self):
        _, fused = build_pair()
        return fused_optim.Adam(fused.parameters(), num_models=B, lr=LRS)

    def test_steplr_per_model_periods(self):
        opt = self._fused_opt()
        sched = fused_optim.StepLR(opt, step_size=[1, 2, 4], gamma=0.1)
        for _ in range(4):
            sched.step()
        lr = opt.lr
        np.testing.assert_allclose(lr[0], LRS[0] * 1e-4, rtol=1e-6)
        np.testing.assert_allclose(lr[1], LRS[1] * 1e-2, rtol=1e-6)
        np.testing.assert_allclose(lr[2], LRS[2] * 1e-1, rtol=1e-6)

    def test_steplr_matches_serial_scheduler(self):
        serial, fused = build_pair()
        sopts = [serial_optim.Adam(m.parameters(), lr=LRS[b])
                 for b, m in enumerate(serial)]
        sscheds = [serial_optim.StepLR(o, step_size=2, gamma=0.5)
                   for o in sopts]
        fopt = fused_optim.Adam(fused.parameters(), num_models=B, lr=LRS)
        fsched = fused_optim.StepLR(fopt, step_size=2, gamma=0.5)
        for _ in range(5):
            for s in sscheds:
                s.step()
            fsched.step()
        for b in range(B):
            assert fopt.lr[b] == pytest.approx(sopts[b].lr, rel=1e-9)

    def test_exponential_and_cosine(self):
        opt = self._fused_opt()
        fused_optim.ExponentialLR(opt, gamma=[0.9, 0.5, 0.1]).step()
        np.testing.assert_allclose(opt.lr, np.array(LRS) * [0.9, 0.5, 0.1],
                                   rtol=1e-9)
        opt2 = self._fused_opt()
        sched = fused_optim.CosineAnnealingLR(opt2, T_max=10)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt2.lr, 0.0, atol=1e-9)


class TestLossScaling:
    def test_mean_reduction_scaled_by_B(self):
        loss = nn.tensor(np.array(2.0, dtype=np.float32), requires_grad=True)
        scaled = hfta.scale_fused_loss(loss, 4, "mean")
        assert scaled.item() == pytest.approx(8.0)

    def test_sum_reduction_not_scaled(self):
        loss = nn.tensor(np.array(2.0, dtype=np.float32))
        assert hfta.scale_fused_loss(loss, 4, "sum").item() == pytest.approx(2.0)

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            hfta.scale_fused_loss(nn.tensor(1.0), 2, "max")

    def test_fused_cross_entropy_gradient_equals_independent(self):
        """Appendix C: the scaled fused loss reconstructs each model's grads."""
        serial, fused = build_pair(90)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        t = rng.integers(0, 4, size=5)
        # independent gradients
        for model in serial:
            F.cross_entropy(model(nn.tensor(x)), t).backward()
        # fused gradient with scaling
        pred = fused(hops.fuse_batch([nn.tensor(x)] * B))
        hfta.FusedCrossEntropyLoss(B)(pred, np.stack([t] * B)).backward()
        for b, model in enumerate(serial):
            np.testing.assert_allclose(fused.weight.grad[b], model.weight.grad,
                                       rtol=1e-4, atol=1e-6)

    def test_per_model_losses_reported(self):
        _, fused = build_pair(95)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        t = rng.integers(0, 4, size=(B, 5))
        crit = hfta.FusedCrossEntropyLoss(B)
        pred = fused(hops.fuse_batch([nn.tensor(x)] * B))
        per_model = crit.per_model(pred, t)
        assert per_model.shape == (B,)
        assert np.all(np.isfinite(per_model))


class TestFusionHelpers:
    def test_load_and_export_roundtrip(self):
        serial, fused = build_pair(110)
        template = nn.Linear(6, 4)
        hfta.export_to_unfused(fused, 1, template)
        np.testing.assert_array_equal(template.weight.data,
                                      serial[1].weight.data)

    def test_load_from_unfused_shape_mismatch(self):
        serial = [nn.Linear(6, 4) for _ in range(2)]
        fused = hops.Linear(3, 6, 4)   # wrong B
        with pytest.raises(ValueError):
            hfta.load_from_unfused(fused, serial)

    def test_validate_fusibility_accepts_identical_models(self):
        models = [nn.Sequential(nn.Linear(4, 4), nn.ReLU()) for _ in range(3)]
        assert hfta.validate_fusibility(models)

    def test_validate_fusibility_rejects_shape_mismatch(self):
        models = [nn.Linear(4, 4), nn.Linear(4, 5)]
        with pytest.raises(ValueError):
            hfta.validate_fusibility(models)

    def test_validate_fusibility_rejects_structure_mismatch(self):
        models = [nn.Sequential(nn.Linear(4, 4)),
                  nn.Sequential(nn.Linear(4, 4), nn.ReLU())]
        with pytest.raises(ValueError):
            hfta.validate_fusibility(models)

    def test_fused_parameter_report(self):
        _, fused = build_pair()
        report = hfta.fused_parameter_report(fused)
        assert report["num_models"] == B
        assert report["total_parameters"] == B * (6 * 4 + 4)
        assert report["parameters_per_model"] == 6 * 4 + 4
