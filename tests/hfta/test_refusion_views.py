"""Aliasing regressions for zero-copy re-fusion (PR 8).

``split_fused``/``split_optimizer`` return *views* along the array
dimension for contiguous keep sets; these tests pin the two properties
the elastic runtime's correctness rests on:

* the view implementation is **bit-identical** to the copy
  implementation (``copy=True`` / ``copy_state=True``) across the whole
  re-fusion op-family matrix of ``test_refusion.py``;
* aliasing is confined to the documented contract — a detached child and
  its narrowed parent occupy *disjoint* slices, so mutating one never
  corrupts the other, and a merge always materializes fresh memory.

The vectorized per-model loss kernels ride along here: they replaced a
per-model graph-building loop on the hot path and must match the
reference loop bitwise.
"""

import numpy as np
import pytest

from repro import hfta
from repro.hfta.fusion import contiguous_run
from repro.hfta.losses import (FusedBCELoss, FusedCrossEntropyLoss,
                               FusedMSELoss, FusedNLLLoss)
from repro.hfta.optim import split_optimizer
from repro.nn.tensor import Tensor

from .test_refusion import (B, FAMILIES, assert_arrays_equal, build_family,
                            fake_step, make_optimizer, randomize)

CONTIGUOUS_KEEPS = ([0, 1], [1, 2, 3], [2], [0, 1, 2, 3])
FANCY_KEEPS = ([0, 2], [3, 1], [0, 3])


# --------------------------------------------------------------------- #
class TestViewEqualsCopy:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("keep", CONTIGUOUS_KEEPS + FANCY_KEEPS,
                             ids=str)
    def test_split_matches_copy_implementation(self, family, keep):
        fused = randomize(build_family(family))
        fast = hfta.split_fused(fused, keep)
        slow = hfta.split_fused(fused, keep, copy=True)
        assert_arrays_equal(fast, slow, f"{family} keep={keep}")

    @pytest.mark.parametrize("family", FAMILIES)
    def test_contiguous_split_returns_views(self, family):
        fused = randomize(build_family(family))
        sub = hfta.split_fused(fused, [1, 2])
        for (name, p_sub), (_, p_full) in zip(sub.named_parameters(),
                                              fused.named_parameters()):
            assert np.shares_memory(p_sub.data, p_full.data), name

    @pytest.mark.parametrize("family", FAMILIES)
    def test_noncontiguous_split_owns_memory(self, family):
        fused = randomize(build_family(family))
        sub = hfta.split_fused(fused, [0, 2])
        for (name, p_sub), (_, p_full) in zip(sub.named_parameters(),
                                              fused.named_parameters()):
            assert not np.shares_memory(p_sub.data, p_full.data), name

    @pytest.mark.parametrize("family", FAMILIES)
    def test_merge_of_views_materializes_fresh_memory(self, family):
        fused = randomize(build_family(family))
        left, right = hfta.split_fused(fused, [0, 1]), \
            hfta.split_fused(fused, [2, 3])
        merged = hfta.merge_fused(left, right)
        assert_arrays_equal(fused, merged, family)
        for (name, p_m), (_, p_f) in zip(merged.named_parameters(),
                                         fused.named_parameters()):
            assert not np.shares_memory(p_m.data, p_f.data), name

    @pytest.mark.parametrize("kind", ("adam", "adamw", "sgd", "adadelta"))
    def test_optimizer_split_matches_copy_implementation(self, kind):
        fused = randomize(build_family("linear"))
        opt = make_optimizer(kind, fused, B, [1e-3 * (b + 1)
                                              for b in range(B)])
        fake_step(fused, opt)
        sub = hfta.split_fused(fused, [1, 2])
        fast = split_optimizer(opt, sub.parameters(), [1, 2])
        slow = split_optimizer(opt, sub.parameters(), [1, 2],
                               copy_state=True)
        for p in sub.parameters():
            st_fast = fast.state.get(id(p)) or {}
            st_slow = slow.state.get(id(p)) or {}
            assert set(st_fast) == set(st_slow)
            for key, value in st_fast.items():
                np.testing.assert_array_equal(value, st_slow[key],
                                              err_msg=f"{kind} {key}")

    def test_contiguous_run_detection(self):
        assert contiguous_run([1, 2, 3]) == (1, 4)
        assert contiguous_run([0]) == (0, 1)
        assert contiguous_run([0, 2]) is None
        assert contiguous_run([2, 1]) is None
        assert contiguous_run([]) is None


# --------------------------------------------------------------------- #
class TestAliasingContract:
    """Mutation through one side of a partition never reaches the other."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_mutating_detached_view_never_corrupts_survivors(self, family):
        fused = randomize(build_family(family))
        baseline = hfta.split_fused(fused, [2, 3], copy=True)
        detached = hfta.split_fused(fused, [0, 1])   # views
        survivors = hfta.split_fused(fused, [2, 3])  # disjoint views

        for p in detached.parameters():
            p.data[...] = -123.0                     # clobber the child
        for _, buf in detached.named_buffers():
            if buf is not None and np.issubdtype(buf.dtype, np.floating):
                buf[...] = -321.0

        assert_arrays_equal(survivors, baseline,
                            f"{family} survivors after child mutation")

    def test_optimizer_partition_steps_disjointly(self):
        """In-place optimizer steps on both halves of a partition land in
        disjoint slices: each half's state stays serial-equivalent."""
        fused = randomize(build_family("linear"))
        opt = make_optimizer("adam", fused, B, [1e-3] * B)
        fake_step(fused, opt)

        left, right = hfta.split_fused(fused, [0, 1]), \
            hfta.split_fused(fused, [2, 3])
        opt_left = split_optimizer(opt, left.parameters(), [0, 1])
        opt_right = split_optimizer(opt, right.parameters(), [2, 3])
        # the copy-based control: same state, provably unaliased
        ctl_left = hfta.split_fused(fused, [0, 1], copy=True)
        ctl_right = hfta.split_fused(fused, [2, 3], copy=True)
        ctl_opt_left = split_optimizer(opt, ctl_left.parameters(), [0, 1],
                                       copy_state=True)
        ctl_opt_right = split_optimizer(opt, ctl_right.parameters(), [2, 3],
                                        copy_state=True)

        rng = np.random.default_rng(21)
        grads = [rng.standard_normal(p.shape).astype(np.float32)
                 for p in fused.parameters()]
        for model, optimizer, half in ((left, opt_left, slice(0, 2)),
                                       (right, opt_right, slice(2, 4)),
                                       (ctl_left, ctl_opt_left, slice(0, 2)),
                                       (ctl_right, ctl_opt_right,
                                        slice(2, 4))):
            for p, g in zip(model.parameters(), grads):
                p.grad = g[half].copy()
            optimizer.step()
            optimizer.step()

        assert_arrays_equal(left, ctl_left, "left half after steps")
        assert_arrays_equal(right, ctl_right, "right half after steps")

    def test_snapshot_owns_its_memory(self):
        fused = randomize(build_family("linear"))
        snap = hfta.snapshot_array(fused)
        for p in fused.parameters():
            p.data[...] = 7.0
        for name, value in snap.items():
            assert not np.all(value == 7.0), name


# --------------------------------------------------------------------- #
class TestVectorizedPerModelLosses:
    """per_model (vectorized) must equal per_model_reference bitwise."""

    @pytest.mark.parametrize("reduction", ("mean", "sum"))
    def test_cross_entropy(self, reduction):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal((B, 9, 5)).astype(np.float32))
        tgt = rng.integers(0, 5, size=(B, 9))
        crit = FusedCrossEntropyLoss(B, reduction)
        np.testing.assert_array_equal(
            crit.per_model(logits, tgt),
            crit.per_model_reference(logits, tgt))

    @pytest.mark.parametrize("reduction", ("mean", "sum"))
    def test_cross_entropy_extra_dims(self, reduction):
        rng = np.random.default_rng(1)
        logits = Tensor(rng.standard_normal((B, 3, 4, 6)).astype(np.float32))
        tgt = rng.integers(0, 6, size=(B, 3, 4))
        crit = FusedCrossEntropyLoss(B, reduction)
        np.testing.assert_array_equal(
            crit.per_model(logits, tgt),
            crit.per_model_reference(logits, tgt))

    @pytest.mark.parametrize("reduction", ("mean", "sum"))
    def test_nll(self, reduction):
        rng = np.random.default_rng(2)
        lp = Tensor(np.log(rng.random((B, 9, 5)).astype(np.float32) + 1e-3))
        tgt = rng.integers(0, 5, size=(B, 9))
        crit = FusedNLLLoss(B, reduction)
        np.testing.assert_array_equal(
            crit.per_model(lp, tgt),
            crit.per_model_reference(lp, tgt))

    @pytest.mark.parametrize("reduction", ("mean", "sum"))
    def test_mse(self, reduction):
        rng = np.random.default_rng(3)
        pred = Tensor(rng.standard_normal((B, 9, 3)).astype(np.float32))
        tgt = rng.standard_normal((B, 9, 3)).astype(np.float32)
        crit = FusedMSELoss(B, reduction)
        np.testing.assert_array_equal(
            crit.per_model(pred, tgt),
            crit.per_model_reference(pred, tgt))

    @pytest.mark.parametrize("reduction", ("mean", "sum"))
    def test_bce(self, reduction):
        rng = np.random.default_rng(4)
        prob = Tensor(rng.random((B, 9)).astype(np.float32))
        tgt = rng.integers(0, 2, size=(B, 9)).astype(np.float32)
        crit = FusedBCELoss(B, reduction)
        np.testing.assert_array_equal(
            crit.per_model(prob, tgt),
            crit.per_model_reference(prob, tgt))

    def test_tensor_target_accepted(self):
        rng = np.random.default_rng(5)
        logits = Tensor(rng.standard_normal((B, 9, 5)).astype(np.float32))
        tgt = Tensor(rng.integers(0, 5, size=(B, 9)).astype(np.float32))
        crit = FusedCrossEntropyLoss(B)
        np.testing.assert_array_equal(
            crit.per_model(logits, tgt),
            crit.per_model_reference(logits, tgt))
