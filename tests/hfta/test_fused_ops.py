"""Fused-operator equivalence tests (paper Table 6 fusion rules).

Every fused operator must produce, for each array slot ``b``, exactly the
output the corresponding unfused operator would produce on model ``b``'s
input — these tests check that property operator by operator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.hfta import ops as hops

rng = np.random.default_rng(3)
B = 3


def per_model_inputs(shape, count=B):
    return [nn.tensor(rng.standard_normal(shape).astype(np.float32))
            for _ in range(count)]


def assert_slotwise_equal(fused_out_per_model, serial_outs, atol=1e-5):
    for fused, serial in zip(fused_out_per_model, serial_outs):
        np.testing.assert_allclose(fused.data, serial.data, atol=atol,
                                   rtol=1e-5)


class TestFusedConvFamily:
    @pytest.mark.parametrize("groups", [1, 2])
    def test_conv2d_equivalence(self, groups):
        serial = [nn.Conv2d(4, 6, 3, padding=1, groups=groups,
                            generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.Conv2d(B, 4, 6, 3, padding=1, groups=groups)
        for b, m in enumerate(serial):
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((2, 4, 5, 5))
        fused_out = fused(hops.fuse_channel(xs))
        assert_slotwise_equal(hops.unfuse_channel(fused_out, B),
                              [m(x) for m, x in zip(serial, xs)])

    def test_conv2d_uses_grouped_convolution(self):
        """The fused conv must execute with B x groups groups (the key rule)."""
        fused = hops.Conv2d(B, 4, 6, 3, groups=2)
        assert fused.weight.shape == (B, 6, 2, 3, 3)
        x = nn.tensor(rng.standard_normal((1, B * 4, 6, 6)).astype(np.float32))
        assert fused(x).shape == (1, B * 6, 4, 4)

    def test_conv2d_channel_validation(self):
        fused = hops.Conv2d(B, 4, 6, 3)
        with pytest.raises(ValueError):
            fused(nn.zeros(1, 4, 5, 5))   # missing the array dimension

    def test_conv1d_equivalence(self):
        serial = [nn.Conv1d(3, 8, 1, generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.Conv1d(B, 3, 8, 1)
        for b, m in enumerate(serial):
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((2, 3, 20))
        fused_out = fused(hops.fuse_channel(xs))
        assert_slotwise_equal(hops.unfuse_channel(fused_out, B),
                              [m(x) for m, x in zip(serial, xs)])

    def test_conv_transpose2d_equivalence(self):
        serial = [nn.ConvTranspose2d(6, 4, 4, stride=2, padding=1,
                                     generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.ConvTranspose2d(B, 6, 4, 4, stride=2, padding=1)
        for b, m in enumerate(serial):
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((2, 6, 5, 5))
        fused_out = fused(hops.fuse_channel(xs))
        assert_slotwise_equal(hops.unfuse_channel(fused_out, B),
                              [m(x) for m, x in zip(serial, xs)])

    def test_gradients_stay_per_model(self):
        """Model b's gradient must not leak into model b'."""
        fused = hops.Conv2d(B, 2, 2, 3, padding=1)
        xs = per_model_inputs((1, 2, 4, 4))
        out = fused(hops.fuse_channel(xs))
        # loss depends only on model 0's slice of the output
        pieces = hops.unfuse_channel(out, B)
        (pieces[0] * pieces[0]).sum().backward()
        grad = fused.weight.grad
        assert np.abs(grad[0]).sum() > 0
        np.testing.assert_array_equal(grad[1], 0)
        np.testing.assert_array_equal(grad[2], 0)


class TestFusedLinearAndNorm:
    def test_linear_equivalence_matches_baddbmm_rule(self):
        serial = [nn.Linear(10, 7, generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.Linear(B, 10, 7)
        for b, m in enumerate(serial):
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((4, 10))
        fused_out = fused(hops.fuse_batch(xs))
        assert_slotwise_equal([fused_out[b] for b in range(B)],
                              [m(x) for m, x in zip(serial, xs)])

    def test_linear_middle_dims(self):
        fused = hops.Linear(B, 8, 4)
        out = fused(nn.randn(B, 2, 5, 8))
        assert out.shape == (B, 2, 5, 4)

    def test_linear_input_validation(self):
        fused = hops.Linear(B, 8, 4)
        with pytest.raises(ValueError):
            fused(nn.randn(B + 1, 2, 8))
        with pytest.raises(ValueError):
            fused(nn.randn(B, 2, 9))

    def test_batchnorm2d_equivalence_train_and_eval(self):
        serial = [nn.BatchNorm2d(5) for _ in range(B)]
        fused = hops.BatchNorm2d(B, 5)
        for b, m in enumerate(serial):
            m.weight.data[...] = rng.standard_normal(5)
            m.bias.data[...] = rng.standard_normal(5)
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((4, 5, 3, 3))
        for training in (True, False):
            for m in serial:
                m.train(training)
            fused.train(training)
            fused_out = fused(hops.fuse_channel(xs))
            assert_slotwise_equal(hops.unfuse_channel(fused_out, B),
                                  [m(x) for m, x in zip(serial, xs)],
                                  atol=1e-4)

    def test_batchnorm_running_stats_per_model(self):
        """Each model's running stats must track only its own activations."""
        fused = hops.BatchNorm1d(B, 2)
        xs = [nn.tensor(np.full((8, 2, 4), float(b), dtype=np.float32))
              for b in range(B)]
        fused(hops.fuse_channel(xs))
        means = fused.running_mean.reshape(B, 2)
        assert means[0].mean() < means[1].mean() < means[2].mean()

    def test_batchnorm1d_batched_layout(self):
        fused = hops.BatchNorm1d(B, 6)
        out = fused(nn.randn(B, 10, 6))
        assert out.shape == (B, 10, 6)

    def test_layernorm_equivalence(self):
        serial = [nn.LayerNorm(8) for _ in range(B)]
        fused = hops.LayerNorm(B, 8)
        for b, m in enumerate(serial):
            m.weight.data[...] = rng.standard_normal(8)
            m.bias.data[...] = rng.standard_normal(8)
            fused.load_model_weights(b, m.weight.data, m.bias.data)
        xs = per_model_inputs((4, 6, 8))
        fused_out = fused(hops.fuse_batch(xs))
        assert_slotwise_equal([fused_out[b] for b in range(B)],
                              [m(x) for m, x in zip(serial, xs)], atol=1e-5)


class TestFusedEmbeddingPoolingActivation:
    def test_embedding_equivalence_and_offsets(self):
        serial = [nn.Embedding(12, 6, generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.Embedding(B, 12, 6)
        for b, m in enumerate(serial):
            fused.load_model_weights(b, m.weight.data)
        ids = rng.integers(0, 12, size=(B, 4, 5))
        fused_out = fused(ids)
        for b in range(B):
            np.testing.assert_allclose(fused_out.data[b],
                                       serial[b](ids[b]).data, atol=1e-6)

    def test_embedding_rejects_out_of_range(self):
        fused = hops.Embedding(B, 10, 4)
        with pytest.raises(IndexError):
            fused(np.full((B, 3), 10))

    def test_maxpool_and_avgpool_channel_folded(self):
        xs = per_model_inputs((2, 3, 8, 8))
        fused_in = hops.fuse_channel(xs)
        pool = hops.MaxPool2d(B, 2)
        serial_pool = nn.MaxPool2d(2)
        assert_slotwise_equal(hops.unfuse_channel(pool(fused_in), B),
                              [serial_pool(x) for x in xs])
        apool = hops.AdaptiveAvgPool2d(B, 1)
        serial_apool = nn.AdaptiveAvgPool2d(1)
        assert_slotwise_equal(hops.unfuse_channel(apool(fused_in), B),
                              [serial_apool(x) for x in xs])

    def test_pooling_validates_channel_divisibility(self):
        pool = hops.MaxPool2d(B, 2)
        with pytest.raises(ValueError):
            pool(nn.zeros(1, B * 3 + 1, 4, 4))

    def test_activations_match_serial(self):
        xs = per_model_inputs((2, 4, 5))
        fused_in = hops.fuse_batch(xs)
        pairs = [(hops.ReLU(B), nn.ReLU()), (hops.Tanh(B), nn.Tanh()),
                 (hops.Hardswish(B), nn.Hardswish()),
                 (hops.LeakyReLU(B, 0.2), nn.LeakyReLU(0.2)),
                 (hops.Sigmoid(B), nn.Sigmoid())]
        for fused_act, serial_act in pairs:
            out = fused_act(fused_in)
            assert_slotwise_equal([out[b] for b in range(B)],
                                  [serial_act(x) for x in xs])

    def test_fused_attention_equivalence(self):
        serial = [nn.TransformerEncoderLayer(8, 2, 16, dropout=0.0,
                                             generator=np.random.default_rng(b))
                  for b in range(B)]
        fused = hops.TransformerEncoderLayer(B, 8, 2, 16, dropout=0.0)
        from repro.hfta import load_from_unfused
        load_from_unfused(fused, serial)
        xs = per_model_inputs((2, 5, 8))
        fused_out = fused(hops.fuse_batch(xs))
        assert_slotwise_equal([fused_out[b] for b in range(B)],
                              [m(x) for m, x in zip(serial, xs)], atol=1e-4)


class TestLayoutHelpers:
    def test_fuse_unfuse_channel_roundtrip(self):
        xs = per_model_inputs((2, 4, 3, 3))
        back = hops.unfuse_channel(hops.fuse_channel(xs), B)
        for a, b in zip(xs, back):
            np.testing.assert_array_equal(a.data, b.data)

    def test_fuse_unfuse_batch_roundtrip(self):
        xs = per_model_inputs((5, 7))
        back = hops.unfuse_batch(hops.fuse_batch(xs))
        for a, b in zip(xs, back):
            np.testing.assert_array_equal(a.data, b.data)

    def test_channel_batch_layout_conversion_roundtrip(self):
        xs = per_model_inputs((2, 4, 3))
        folded = hops.fuse_channel(xs)
        batched = hops.channel_to_batch(folded, B)
        assert batched.shape == (B, 2, 4, 3)
        back = hops.batch_to_channel(batched)
        np.testing.assert_allclose(back.data, folded.data)

    def test_unfuse_channel_validates_divisibility(self):
        with pytest.raises(ValueError):
            hops.unfuse_channel(nn.zeros(1, 7, 2, 2), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 4))
    def test_property_layout_roundtrip(self, b, n, c):
        x = nn.tensor(np.random.default_rng(0).standard_normal(
            (n, b * c, 2)).astype(np.float32))
        roundtrip = hops.batch_to_channel(hops.channel_to_batch(x, b))
        np.testing.assert_allclose(roundtrip.data, x.data)
