"""Tests for the accelerator performance / memory / utilization simulator.

These tests assert the *qualitative* properties the paper establishes (who
wins, what plateaus, what scales) rather than absolute numbers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import hwsim


@pytest.fixture(scope="module")
def pointnet():
    return hwsim.get_workload("pointnet_cls")


@pytest.fixture(scope="module")
def dcgan():
    return hwsim.get_workload("dcgan")


class TestDevicesAndKernels:
    def test_device_lookup_case_insensitive(self):
        assert hwsim.get_device("v100").name == "V100"
        with pytest.raises(KeyError):
            hwsim.get_device("H100")

    def test_device_generations_grow(self):
        assert hwsim.A100.fp32_tflops > hwsim.V100.fp32_tflops
        assert hwsim.A100.mem_gb > hwsim.RTX6000.mem_gb > hwsim.V100.mem_gb

    def test_mig_only_on_a100(self):
        assert hwsim.A100.mig_max_instances == 7
        assert hwsim.V100.mig_max_instances == 0

    def test_framework_overhead_matches_fig6_intercepts(self):
        assert hwsim.V100.framework_overhead_gb("fp32") == pytest.approx(1.52)
        assert hwsim.V100.framework_overhead_gb("amp") == pytest.approx(2.12)

    def test_fused_kernel_scales_work_and_parallelism(self):
        k = hwsim.gemm_kernel("k", 64, 64, 64)
        fused = k.fused(5)
        assert fused.flops == pytest.approx(5 * k.flops)
        assert fused.parallelism == pytest.approx(5 * k.parallelism)

    def test_kernel_cost_monotone_in_size(self):
        small = hwsim.gemm_kernel("s", 32, 32, 32)
        large = hwsim.gemm_kernel("l", 512, 512, 512)
        cs = hwsim.kernel_cost(small, hwsim.V100)
        cl = hwsim.kernel_cost(large, hwsim.V100)
        assert cl.busy_time_s > cs.busy_time_s
        assert cl.compute_utilization > cs.compute_utilization

    def test_amp_only_helps_large_gemms(self):
        small = hwsim.gemm_kernel("s", 64, 64, 64)
        large = hwsim.gemm_kernel("l", 8192, 4096, 1024)
        dev = hwsim.V100
        speedup_small = (hwsim.kernel_cost(small, dev, "fp32").busy_time_s
                         / hwsim.kernel_cost(small, dev, "amp").busy_time_s)
        speedup_large = (hwsim.kernel_cost(large, dev, "fp32").busy_time_s
                         / hwsim.kernel_cost(large, dev, "amp").busy_time_s)
        assert speedup_large > speedup_small

    def test_workload_registry_complete(self):
        assert set(hwsim.MAJOR_WORKLOADS) <= set(hwsim.WORKLOADS)
        assert set(hwsim.SECONDARY_WORKLOADS) <= set(hwsim.WORKLOADS)
        with pytest.raises(KeyError):
            hwsim.get_workload("alexnet")


class TestMemoryModel:
    def test_hfta_pays_framework_overhead_once(self, pointnet):
        dev = hwsim.V100
        hfta8 = hwsim.memory_footprint_gb(pointnet, dev, "hfta", 8, "fp32")
        mps8 = hwsim.memory_footprint_gb(pointnet, dev, "mps", 8, "fp32")
        assert mps8 - hfta8 == pytest.approx(
            7 * dev.framework_overhead_gb("fp32"), rel=1e-6)

    def test_memory_linear_in_models(self, pointnet):
        dev = hwsim.V100
        f = [hwsim.memory_footprint_gb(pointnet, dev, "hfta", b, "amp")
             for b in (1, 2, 3)]
        assert f[2] - f[1] == pytest.approx(f[1] - f[0], rel=1e-6)

    def test_max_models_matches_paper_order_of_magnitude(self, pointnet):
        """Paper: ~9 / 15 / 25 AMP PointNet-cls models under HFTA."""
        assert 7 <= hwsim.max_models(pointnet, hwsim.V100, "hfta", "amp") <= 11
        assert 12 <= hwsim.max_models(pointnet, hwsim.RTX6000, "hfta", "amp") <= 18
        assert 20 <= hwsim.max_models(pointnet, hwsim.A100, "hfta", "amp") <= 30

    def test_hfta_fits_more_models_than_mps(self, pointnet, dcgan):
        for wl in (pointnet, dcgan):
            assert hwsim.max_models(wl, hwsim.V100, "hfta", "amp") > \
                hwsim.max_models(wl, hwsim.V100, "mps", "amp")


class TestSharingModes:
    def test_concurrent_throughput_close_to_serial(self, pointnet):
        dev = hwsim.V100
        serial = hwsim.simulate(pointnet, dev, "serial", 1, "fp32")
        conc = hwsim.simulate(pointnet, dev, "concurrent", 4, "fp32")
        # whole-device throughput stays at the serial level (Fig 4 flat curve)
        assert conc.throughput == pytest.approx(serial.throughput, rel=0.35)

    def test_hfta_beats_all_baselines_at_peak(self, pointnet):
        for dev in (hwsim.V100, hwsim.RTX6000, hwsim.A100):
            speedups = hwsim.peak_speedups(pointnet, dev)
            assert all(s > 1.5 for s in speedups.values()), (dev.name, speedups)

    def test_hfta_speedup_grows_with_device_generation(self, pointnet):
        v100 = hwsim.peak_speedups(pointnet, hwsim.V100)["serial"]
        a100 = hwsim.peak_speedups(pointnet, hwsim.A100)["serial"]
        assert a100 > v100

    def test_hfta_throughput_monotone_then_plateaus(self, pointnet):
        sweep = hwsim.throughput_sweep(pointnet, hwsim.V100, "hfta", "amp")
        tps = [r.throughput for r in sweep]
        assert all(b >= a * 0.98 for a, b in zip(tps, tps[1:]))

    def test_mps_gain_capped(self, pointnet):
        dev = hwsim.V100
        serial = hwsim.simulate(pointnet, dev, "serial", 1, "amp").throughput
        sweep = hwsim.throughput_sweep(pointnet, dev, "mps", "amp")
        assert max(r.throughput for r in sweep) < 4.0 * serial

    def test_mig_unavailable_on_v100(self, pointnet):
        with pytest.raises(ValueError):
            hwsim.simulate(pointnet, hwsim.V100, "mig", 2)

    def test_mps_unavailable_on_tpu(self, pointnet):
        with pytest.raises(ValueError):
            hwsim.simulate(pointnet, hwsim.TPU_V3, "mps", 2)

    def test_unknown_mode_rejected(self, pointnet):
        with pytest.raises(ValueError):
            hwsim.simulate(pointnet, hwsim.V100, "timeslice", 1)

    def test_out_of_memory_reports_not_fits(self, pointnet):
        result = hwsim.simulate(pointnet, hwsim.V100, "mps", 64, "fp32")
        assert not result.fits
        assert result.throughput == 0.0

    def test_tpu_hfta_speedup(self, pointnet, dcgan):
        """Figure 5: large HFTA speedups on TPU v3, super-linear for DCGAN."""
        for wl, minimum in ((pointnet, 3.0), (dcgan, 8.0)):
            serial = hwsim.simulate(wl, hwsim.TPU_V3, "serial", 1, "amp")
            peak, at = hwsim.peak_throughput(wl, hwsim.TPU_V3, "hfta", "amp")
            assert peak / serial.throughput > minimum

    def test_dcgan_concurrent_plateaus_while_hfta_scales(self, dcgan):
        """Fig 4c: the concurrent curve flattens early (host contention),
        while the HFTA curve keeps climbing with the number of models."""
        conc = [r.throughput for r in hwsim.throughput_sweep(
            dcgan, hwsim.V100, "concurrent", "fp32", max_jobs=30)]
        hfta_sweep = [r.throughput for r in hwsim.throughput_sweep(
            dcgan, hwsim.V100, "hfta", "fp32", max_jobs=30)]
        assert max(conc) < 3.0 * conc[0]
        assert max(hfta_sweep) > max(conc)
        assert max(hfta_sweep) / hfta_sweep[0] > max(conc) / conc[0]


class TestCounters:
    def test_hfta_utilization_scales_with_models(self, pointnet):
        dev = hwsim.A100
        r1 = hwsim.simulate(pointnet, dev, "hfta", 1, "amp")
        r8 = hwsim.simulate(pointnet, dev, "hfta", 8, "amp")
        r20 = hwsim.simulate(pointnet, dev, "hfta", 20, "amp")
        assert r1.sm_active < r8.sm_active < r20.sm_active
        assert r1.tensor_active < r20.tensor_active

    def test_concurrent_counters_match_serial(self, pointnet):
        dev = hwsim.A100
        serial = hwsim.simulate(pointnet, dev, "serial", 1, "amp")
        conc = hwsim.simulate(pointnet, dev, "concurrent", 6, "amp")
        assert conc.sm_active == pytest.approx(serial.sm_active, rel=0.05)

    def test_mps_counters_plateau_at_cap(self, pointnet):
        dev = hwsim.A100
        r12 = hwsim.simulate(pointnet, dev, "mps", 10, "amp")
        assert r12.sm_active <= dev.mps_utilization_cap + 1e-6

    def test_occupancy_below_active(self, pointnet):
        r = hwsim.simulate(pointnet, hwsim.V100, "hfta", 6, "amp")
        assert r.sm_occupancy < r.sm_active

    def test_nvidia_smi_metric_is_a_weak_signal(self, pointnet):
        """Figure 13: the nvidia-smi 'GPU utilization' stays high regardless."""
        dev = hwsim.A100
        serial = hwsim.simulate(pointnet, dev, "serial", 1, "amp")
        hfta = hwsim.simulate(pointnet, dev, "hfta", 20, "amp")
        assert serial.gpu_util_nvidia_smi > 0.5
        ratio = hfta.gpu_util_nvidia_smi / serial.gpu_util_nvidia_smi
        true_ratio = hfta.sm_active / serial.sm_active
        assert ratio < true_ratio   # it underestimates the real difference


class TestAnalysis:
    def test_table5_structure(self, pointnet):
        speedups = hwsim.peak_speedups(pointnet, hwsim.A100)
        assert set(speedups) == {"serial", "concurrent", "mps", "mig"}

    def test_equal_models_speedups_positive(self, pointnet):
        out = hwsim.equal_models_speedups(pointnet, hwsim.V100, "amp")
        assert out and all(v >= 1.0 for v in out.values())

    def test_amp_over_fp32_largest_for_hfta(self, pointnet):
        table10 = hwsim.amp_over_fp32_speedups(pointnet, hwsim.V100)
        assert table10["hfta"] >= max(v for k, v in table10.items()
                                      if k != "hfta") - 1e-6

    def test_baseline_modes_per_device(self):
        assert "mig" in hwsim.baseline_modes(hwsim.A100)
        assert "mig" not in hwsim.baseline_modes(hwsim.V100)
        assert hwsim.baseline_modes(hwsim.TPU_V3) == ["serial"]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 12), st.sampled_from(["fp32", "amp"]))
def test_property_hfta_device_throughput_never_below_serial(b, precision):
    """The fused array always extracts at least one serial job's worth of
    throughput from the device (Figure 4: HFTA curves start at ~1x and only
    go up)."""
    wl = hwsim.get_workload("pointnet_cls")
    serial = hwsim.simulate(wl, hwsim.V100, "serial", 1, precision)
    fused = hwsim.simulate(wl, hwsim.V100, "hfta", b, precision)
    if fused.fits:
        assert fused.throughput >= serial.throughput * 0.95


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 10))
def test_property_memory_monotone_in_models(b):
    wl = hwsim.get_workload("dcgan")
    m1 = hwsim.memory_footprint_gb(wl, hwsim.A100, "hfta", b, "fp32")
    m2 = hwsim.memory_footprint_gb(wl, hwsim.A100, "hfta", b + 1, "fp32")
    assert m2 > m1
