"""Tests for the cluster-usage study machinery (Table 1, Figures 9-10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import cluster


@pytest.fixture(scope="module")
def small_trace():
    return cluster.generate_trace(cluster.TraceConfig(num_jobs=3000, seed=5))


class TestLevenshtein:
    def test_known_distance(self):
        assert cluster.levenshtein_distance("kitten", "sitting") == 3

    def test_identical_and_empty(self):
        assert cluster.levenshtein_distance("abc", "abc") == 0
        assert cluster.levenshtein_distance("", "abc") == 3
        assert cluster.normalized_similarity("", "") == 1.0

    def test_similarity_of_sweep_names_above_threshold(self):
        a = "pointnet_shapenet_hparam_sweep_lr_trial0001"
        b = "pointnet_shapenet_hparam_sweep_lr_trial0087"
        assert cluster.normalized_similarity(a, b) >= 0.9

    def test_similarity_of_unrelated_names_below_threshold(self):
        assert cluster.normalized_similarity("jupyter_01923",
                                             "bert_ddp_0001") < 0.9

    @settings(max_examples=30, deadline=None)
    @given(st.text(max_size=12), st.text(max_size=12))
    def test_property_symmetric_and_bounded(self, a, b):
        d_ab = cluster.levenshtein_distance(a, b)
        assert d_ab == cluster.levenshtein_distance(b, a)
        assert abs(len(a) - len(b)) <= d_ab <= max(len(a), len(b))

    @settings(max_examples=20, deadline=None)
    @given(st.text(min_size=1, max_size=10), st.text(max_size=10),
           st.text(max_size=10))
    def test_property_triangle_inequality(self, a, b, c):
        assert cluster.levenshtein_distance(a, c) <= \
            cluster.levenshtein_distance(a, b) + cluster.levenshtein_distance(b, c)


class TestTraceGenerator:
    def test_trace_size_and_sorting(self, small_trace):
        assert len(small_trace) > 2500
        times = [j.submit_time_s for j in small_trace]
        assert times == sorted(times)

    def test_categories_present(self, small_trace):
        cats = {j.true_category for j in small_trace}
        assert cats == set(cluster.JOB_CATEGORIES)

    def test_repetitive_jobs_are_single_gpu(self, small_trace):
        for job in small_trace:
            if job.true_category == "repetitive_single_gpu":
                assert job.is_single_gpu

    def test_distributed_jobs_request_multiple_gpus(self, small_trace):
        for job in small_trace:
            if job.true_category == "distributed":
                assert job.num_gpus > 1

    def test_deterministic_for_seed(self):
        cfg = cluster.TraceConfig(num_jobs=200, seed=9)
        a = cluster.generate_trace(cfg)
        b = cluster.generate_trace(cfg)
        assert [j.name for j in a] == [j.name for j in b]

    def test_gpu_hours_positive(self, small_trace):
        assert all(j.gpu_hours > 0 for j in small_trace)


class TestClassifier:
    def test_classifier_recovers_ground_truth(self, small_trace):
        labels = cluster.classify_jobs(small_trace)
        accuracy = cluster.classification_accuracy(small_trace, labels)
        assert accuracy > 0.95

    def test_breakdown_shares_sum_to_one(self, small_trace):
        labels = cluster.classify_jobs(small_trace)
        breakdown = cluster.usage_breakdown(small_trace, labels)
        shares = [breakdown[f"{c}_share"] for c in cluster.JOB_CATEGORIES]
        assert sum(shares) == pytest.approx(1.0)

    def test_repetitive_share_dominates(self, small_trace):
        """Table 1's headline: repetitive single-GPU work is the largest share."""
        labels = cluster.classify_jobs(small_trace)
        breakdown = cluster.usage_breakdown(small_trace, labels)
        rep = breakdown["repetitive_single_gpu_share"]
        assert rep > 0.30
        assert rep > breakdown["isolated_single_gpu_share"]
        assert rep > breakdown["distributed_share"]

    def test_lone_single_gpu_job_is_isolated(self):
        job = cluster.JobRecord(0, "u", "model_x_123", 0.0, 2.0, 1, 1, False)
        labels = cluster.classify_jobs([job])
        assert labels[0] == "isolated_single_gpu"

    def test_burst_of_similar_jobs_is_repetitive(self):
        jobs = [cluster.JobRecord(i, "u", f"sweep_lr_trial{i:03d}", float(i),
                                  2.0, 1, 1, False) for i in range(5)]
        labels = cluster.classify_jobs(jobs)
        assert all(v == "repetitive_single_gpu" for v in labels.values())

    def test_burst_outside_window_not_repetitive(self):
        jobs = [cluster.JobRecord(i, "u", f"sweep_lr_trial{i:03d}",
                                  i * 300.0, 2.0, 1, 1, False)
                for i in range(3)]
        labels = cluster.classify_jobs(jobs)
        assert all(v == "isolated_single_gpu" for v in labels.values())

    def test_different_users_not_grouped(self):
        jobs = [cluster.JobRecord(i, f"user{i}", f"sweep_lr_trial{i:03d}",
                                  float(i), 2.0, 1, 1, False)
                for i in range(4)]
        labels = cluster.classify_jobs(jobs)
        assert all(v == "isolated_single_gpu" for v in labels.values())

    def test_multi_gpu_jobs_are_distributed(self):
        job = cluster.JobRecord(0, "u", "big_model_ddp", 0.0, 5.0, 8, 1, False)
        assert cluster.classify_jobs([job])[0] == "distributed"


class TestUtilizationSampling:
    def test_sampled_jobs_have_low_utilization(self, small_trace):
        """Figure 10: repetitive jobs under-utilize the GPU."""
        labels = cluster.classify_jobs(small_trace)
        samples = cluster.sample_repetitive_utilization(small_trace, labels,
                                                        num_samples=13)
        assert len(samples) == 13
        assert all(0.0 < s.sm_active < 0.85 for s in samples)
        assert all(s.sm_occupancy < s.sm_active for s in samples)

    def test_sampling_is_deterministic(self, small_trace):
        labels = cluster.classify_jobs(small_trace)
        a = cluster.sample_repetitive_utilization(small_trace, labels, 5, seed=1)
        b = cluster.sample_repetitive_utilization(small_trace, labels, 5, seed=1)
        assert [s.job_id for s in a] == [s.job_id for s in b]

    def test_empty_when_no_repetitive_jobs(self):
        job = cluster.JobRecord(0, "u", "solo", 0.0, 1.0, 1, 1, False)
        labels = cluster.classify_jobs([job])
        assert cluster.sample_repetitive_utilization([job], labels) == []


class TestWorkloadSignature:
    def test_collapses_value_variations_of_one_sweep(self):
        names = ["train_lr0.01_bs32", "train_lr0.003_bs64",
                 "train_lr1e-4_bs128"]
        assert len({cluster.workload_signature(n) for n in names}) == 1

    def test_distinguishes_different_workloads(self):
        assert cluster.workload_signature("train_resnet_lr0.01") != \
            cluster.workload_signature("train_pointnet_lr0.01")

    def test_user_scopes_the_key(self):
        assert cluster.workload_signature("train_lr0.01", user="alice") != \
            cluster.workload_signature("train_lr0.01", user="bob")
