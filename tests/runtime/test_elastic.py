"""Tests for the elastic array lifecycle: stepwise execution, stop signals,
live eviction, freed-width admission, and fleet defragmentation.

The invariant under test everywhere: elasticity changes *when and with
whom* a job trains — never what it learns.  Every exported checkpoint
(evicted early or trained to budget, admitted mid-flight or launched
normally, merged across devices or not) must match serial training of the
same job for the same number of steps, in parameters *and buffers*.
"""

import threading

import numpy as np
import pytest

from repro import nn, optim as serial_optim
from repro.hfta.ops.factory import OpsLibrary
from repro.hfht import MedianStopper, SuccessiveHalvingStopper
from repro.hwsim import RTX6000, V100
from repro.nn import functional as F
from repro.runtime import (ArrayPolicy, ArrayState, DefragPolicy,
                           FleetPlacer, FleetScheduler, JobState,
                           PlacementDecision, StopReason,
                           TrainingArrayEngine, TrainingJob)

STEPS = 4
BATCH = 6
CLASSES = 3
FEATURES = 10
CHANNELS = 4


class TinyMLP(nn.Module):
    """Minimal OpsLibrary model used as the tests' job architecture."""

    def __init__(self, hidden=8, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


class TinyCNN(nn.Module):
    """Conv + BatchNorm model: exercises buffer (running stats) movement
    through eviction — the regression surface of export_to_unfused."""

    def __init__(self, channels=CHANNELS, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        # bias=False: BatchNorm cancels the conv bias, so with a bias Adam
        # amplifies float noise in that direction and fused-vs-serial
        # checkpoints drift even without elasticity (see verify notes)
        self.conv = lib.Conv2d(3, channels, 3, padding=1, bias=False,
                               generator=generator)
        self.bn = lib.BatchNorm2d(channels)
        self.relu = lib.ReLU()
        self.pool = lib.AdaptiveAvgPool2d(1)
        self.fc = lib.Linear(channels, CLASSES, generator=generator)

    def fuse_inputs(self, inputs):
        return self.lib.fuse_conv_inputs(inputs)

    def forward(self, x):
        x = self.pool(self.relu(self.bn(self.conv(x))))
        return self.fc(self.lib.conv_to_dense(x))


def mlp_stream(seed, steps=STEPS, batch=BATCH):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((batch, FEATURES)).astype(np.float32),
                rng.integers(0, CLASSES, size=batch))
               for _ in range(steps)]
    return lambda step: batches[step]


def cnn_stream(seed, steps=STEPS):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((BATCH, 3, 5, 5)).astype(np.float32),
                rng.integers(0, CLASSES, size=BATCH))
               for _ in range(steps)]
    return lambda step: batches[step]


def make_job(index, lr=1e-3, steps=STEPS, model="mlp", **kwargs):
    config = {"lr": lr, "optimizer": kwargs.pop("optimizer", "adam")}
    if model == "mlp":
        build = lambda B=None, g=None: TinyMLP(8, B, g)    # noqa: E731
        data = kwargs.pop("data", None) or mlp_stream(1000 + index, steps)
    else:
        build = lambda B=None, g=None: TinyCNN(CHANNELS, B, g)  # noqa: E731
        data = kwargs.pop("data", None) or cnn_stream(1000 + index, steps)
    return TrainingJob(name=f"{model}job{index}_lr{lr}", seed=index,
                       steps=steps, config=config, build_model=build,
                       data=data, **kwargs)


def train_serial_reference(job, steps):
    """What serial training of ``job`` for ``steps`` steps produces."""
    model = job.build_model(None, np.random.default_rng(job.seed))
    opt = serial_optim.Adam(model.parameters(), lr=job.config["lr"])
    for step in range(steps):
        x, y = job.data(step)
        opt.zero_grad()
        loss = F.cross_entropy(model(nn.tensor(x)), y)
        loss.backward()
        opt.step()
    return model


def assert_checkpoint_matches(result, job, rtol=1e-4, atol=1e-6):
    """Default tolerances fit dense models; conv models pass looser ones
    (grouped convolution sums in a different order than serial conv — the
    same tolerance convention as tests/integration/test_convergence.py)."""
    reference = train_serial_reference(job, result.steps_trained)
    for (name, p_ref), (_, p_out) in zip(
            reference.named_parameters(),
            result.checkpoint.named_parameters()):
        np.testing.assert_allclose(p_out.data, p_ref.data, rtol=rtol,
                                   atol=atol,
                                   err_msg=f"{result.name} {name}")
    for (name, b_ref), (_, b_out) in zip(reference.named_buffers(),
                                         result.checkpoint.named_buffers()):
        if b_ref is None:
            continue
        np.testing.assert_allclose(b_out, b_ref, rtol=rtol, atol=atol,
                                   err_msg=f"{result.name} buffer {name}")


stop_after = lambda n: (lambda epochs, curve: epochs >= n)   # noqa: E731


# --------------------------------------------------------------------- #
class TestElasticEngine:
    def test_early_stopped_jobs_are_evicted_and_serial_equivalent(self):
        jobs = [make_job(i, stop=stop_after(1) if i < 2 else None)
                for i in range(5)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=8))
        ids = engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert len(results) == 5
        assert engine.metrics.jobs_evicted == 2
        assert engine.metrics.arrays_launched == 1
        for job, job_id in zip(jobs, ids):
            result = results[job_id]
            expected = 1 if job.stop else STEPS
            assert result.steps_trained == expected
            assert len(result.loss_curve) == expected
            assert_checkpoint_matches(result, job)
        evicted = [results[i] for i in ids[:2]]
        assert all(r.evicted and r.stop_reason == StopReason.EARLY_STOP
                   for r in evicted)

    def test_eviction_exports_batchnorm_buffers_per_slot(self):
        """Regression (export_to_unfused): an evicted conv+BN job's
        checkpoint must carry *its own* running stats, exactly as serial
        training would have left them at the eviction step."""
        jobs = [make_job(i, model="cnn",
                         stop=stop_after(2) if i == 1 else None)
                for i in range(4)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert engine.metrics.jobs_evicted == 1
        assert results[ids[1]].steps_trained == 2
        for job, job_id in zip(jobs, ids):
            result = results[job_id]
            checkpoint = dict(result.checkpoint.named_buffers())
            assert "bn.running_mean" in checkpoint   # buffers came along
            assert not np.allclose(checkpoint["bn.running_mean"], 0.0)
            # conv reductions sum in a different order than serial — the
            # repo-wide conv tolerance (tests/integration) applies
            assert_checkpoint_matches(result, job, rtol=1e-3, atol=1e-4)

    def test_target_loss_convergence_evicts(self):
        converger = make_job(0, target_loss=1e9)   # converged after step 1
        runner = make_job(1)
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all([converger, runner])
        results = engine.run_until_idle()
        assert results[ids[0]].stop_reason == StopReason.CONVERGED
        assert results[ids[0]].steps_trained == 1
        assert results[ids[1]].steps_trained == STEPS
        assert_checkpoint_matches(results[ids[0]], converger)

    def test_cancel_queued_job_never_trains(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        keep = engine.submit(make_job(0))
        cancel = engine.submit(make_job(1))
        assert engine.cancel(cancel)
        results = engine.run_until_idle()
        assert keep in results and cancel not in results
        assert engine.queue.state(cancel) == JobState.CANCELLED
        assert engine.queue.result(cancel) is None

    def test_cancel_running_job_evicts_with_partial_checkpoint(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        victim_id = []

        def cancel_victim(epochs, curve):
            if epochs >= 2:
                engine.cancel(victim_id[0])
            return False

        victim = make_job(0)
        trigger = make_job(1, stop=cancel_victim)
        ids = engine.submit_all([victim, trigger])
        victim_id.append(ids[0])
        results = engine.run_until_idle()

        assert engine.queue.state(ids[0]) == JobState.CANCELLED
        assert engine.metrics.jobs_cancelled == 1
        cancelled = results[ids[0]]
        assert cancelled.stop_reason == StopReason.CANCELLED
        assert cancelled.steps_trained < STEPS
        assert_checkpoint_matches(cancelled, victim)
        assert results[ids[1]].steps_trained == STEPS

    def test_cancel_unknown_job_id_returns_false(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        assert engine.cancel(12345) is False

    def test_cancel_queued_job_is_counted(self):
        """Regression: a job cancelled straight out of the queue must show
        up in jobs_cancelled (the executor never sees it)."""
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        job_id = engine.submit(make_job(0))
        assert engine.cancel(job_id)
        assert engine.metrics.jobs_cancelled == 1
        assert not engine.cancel(job_id)          # idempotent
        assert engine.metrics.jobs_cancelled == 1

    def test_failed_array_keeps_the_record_of_its_completed_work(self):
        """Regression: a width-2 array whose surviving slot's data stream
        breaks after a cohort-mate was already evicted must still record
        the eviction's completions and slot-steps."""
        def breaking_stream(seed):
            inner = mlp_stream(seed, steps=6)

            def data(step):
                if step >= 3:
                    raise IOError("dataset offline")
                return inner(step)
            return data

        early = make_job(0, steps=6, stop=stop_after(1))
        doomed = make_job(1, steps=6, data=breaking_stream(2000))
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=2))
        ids = engine.submit_all([early, doomed])
        results = engine.run_until_idle()

        assert ids[0] in results                   # evicted with checkpoint
        assert engine.queue.state(ids[0]) == JobState.COMPLETED
        assert engine.queue.state(ids[1]) == JobState.FAILED
        assert engine.metrics.jobs_completed == 1  # the evicted job counts
        assert engine.metrics.jobs_failed == 1
        failed_array = engine.metrics.records[0]
        assert failed_array.jobs_served == 1
        assert failed_array.slot_steps_total > 0
        assert_checkpoint_matches(results[ids[0]], early)

    def test_cancelled_only_array_counts_no_completions(self):
        """Regression: an array whose only job was cancelled must not fall
        back to counting its launch width as completions."""
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        trigger = []

        def cancel_self(epochs, curve):
            if epochs >= 1:
                engine.cancel(trigger[0])
            return False

        trigger.append(engine.submit(make_job(0, stop=cancel_self)))
        engine.run_until_idle()
        assert engine.metrics.jobs_cancelled == 1
        assert engine.metrics.jobs_completed == 0
        assert engine.metrics.records[0].jobs_served == 0

    def test_cancel_on_static_engine_does_not_hang(self):
        """Regression: a cancel request on a non-elastic engine used to pin
        the slot forever (CANCELLED outranked BUDGET, and static mode
        skips every non-BUDGET retirement -> zero-step epochs forever)."""
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4),
                                     elastic=False)
        victim_id = []

        def cancel_victim(epochs, curve):
            if epochs >= 2:
                engine.cancel(victim_id[0])
            return False

        ids = engine.submit_all([make_job(0), make_job(1,
                                                       stop=cancel_victim)])
        victim_id.append(ids[0])
        results = engine.run_until_idle()
        # static mode = legacy run-to-completion: the job trains its full
        # budget and completes (the cancel request is only honored by the
        # elastic lifecycle)
        assert results[ids[0]].steps_trained == STEPS
        assert engine.queue.state(ids[0]) == JobState.COMPLETED

    def test_static_mode_ignores_stop_signals_and_wastes_width(self):
        jobs = [make_job(i, stop=stop_after(1) if i < 2 else None)
                for i in range(4)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4),
                                     elastic=False)
        ids = engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert engine.metrics.jobs_evicted == 0
        assert all(results[i].steps_trained == STEPS for i in ids)
        # 2 slots useful for 4 steps + 2 useful only for 1 epoch:
        # occupied = 2*4 + 2*1 = 10 of 16 executed slot-steps
        assert engine.metrics.fused_width_efficiency == pytest.approx(10 / 16)

    def test_elastic_mode_frees_the_width_static_mode_wastes(self):
        jobs = [make_job(i, stop=stop_after(1) if i < 2 else None)
                for i in range(4)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        engine.submit_all(jobs)
        engine.run_until_idle()
        assert engine.metrics.fused_width_efficiency == 1.0
        assert engine.metrics.jobs_evicted == 2
        record = engine.metrics.records[0]
        assert record.slot_steps_total == 4 + 2 * (STEPS - 1)
        assert record.evictions == 2

    def test_queued_job_is_admitted_into_freed_width(self):
        jobs = [make_job(i, steps=6, stop=stop_after(1) if i < 2 else None)
                for i in range(4)]
        late = make_job(9, steps=6)
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all(jobs)
        late_id = engine.submit(late)

        results = {r.job_id: r for r in engine.run_cycle(max_jobs=4)}
        results.update(engine.run_until_idle())

        assert engine.metrics.jobs_admitted == 1
        assert engine.metrics.arrays_launched == 1   # one array served all 5
        assert results[late_id].array_id == results[ids[0]].array_id
        assert results[late_id].steps_trained == 6
        assert_checkpoint_matches(results[late_id], late)
        for job, job_id in zip(jobs, ids):
            assert_checkpoint_matches(results[job_id], job)

    def test_incompatible_queued_jobs_are_not_admitted(self):
        jobs = [make_job(i, steps=6, stop=stop_after(1) if i == 0 else None)
                for i in range(3)]
        alien = make_job(7, steps=6, optimizer="sgd", lr=0.05)
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all(jobs)
        alien_id = engine.submit(alien)
        results = {r.job_id: r for r in engine.run_cycle(max_jobs=3)}
        results.update(engine.run_until_idle())

        assert engine.metrics.jobs_admitted == 0
        assert engine.metrics.arrays_launched == 2
        assert results[alien_id].array_id != results[ids[1]].array_id
        assert_checkpoint_matches(results[ids[0]], jobs[0])

    def test_executor_state_machine_transitions(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        engine.submit_all([make_job(i, stop=stop_after(1) if i == 0 else None)
                           for i in range(3)])
        batch = engine.queue.pop_pending()
        cohorts, _ = engine.batcher.form_cohorts(batch)
        (plan,) = engine.policy.plan(cohorts)
        executor = engine.make_executor(plan)

        assert executor.state == ArrayState.PENDING
        executor.prepare()
        assert executor.state == ArrayState.FUSED
        assert executor.live_width == 3

        retired = executor.step_epoch()          # epoch 1: one eviction
        assert [r.stop_reason for r in retired] == [StopReason.EARLY_STOP]
        assert executor.state == ArrayState.STEPPING
        assert executor.live_width == 2
        assert executor.freed_width == 2         # width cap 4, 2 live

        while not executor.done:
            executor.step_epoch()
        assert executor.state == ArrayState.DRAINED
        assert executor.live_width == 0


# --------------------------------------------------------------------- #
class TestElasticFleet:
    def test_eviction_frees_width_that_a_queued_job_occupies(self):
        """The headline scenario: an 8-job array, 3 jobs early-stop at
        epoch 1, and a queued 9th job boards the freed width — with every
        checkpoint (evicted, full-budget, and admitted) matching serial
        training exactly."""
        jobs = [make_job(i, steps=6, stop=stop_after(1) if i < 3 else None)
                for i in range(8)]
        queued = make_job(8, steps=6)
        fleet = FleetScheduler(devices=(V100,), max_width=8)
        ids = fleet.submit_all(jobs)
        queued_id = fleet.submit(queued)

        results = {r.job_id: r for r in fleet.run_cycle(max_jobs=8)}
        results.update(fleet.run_until_idle())

        assert len(results) == 9
        assert fleet.metrics.jobs_evicted == 3
        assert fleet.metrics.jobs_admitted == 1
        assert fleet.metrics.arrays_launched == 1
        assert results[queued_id].array_id == results[ids[0]].array_id
        for job_id in ids[:3]:
            assert results[job_id].steps_trained == 1
            assert results[job_id].evicted
        for job, job_id in list(zip(jobs, ids)) + [(queued, queued_id)]:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
            assert_checkpoint_matches(results[job_id], job)

    def test_defrag_merges_underfilled_stragglers_across_devices(self):
        """Two devices each hold a 4-wide array; 2 jobs of each early-stop
        at epoch 1, leaving two half-empty stragglers.  The defrag pass
        must merge them into one array (and every checkpoint must still
        match serial training)."""
        barrier = threading.Barrier(2, timeout=10.0)

        def synced_stream(seed, steps):
            inner = mlp_stream(seed, steps)

            def data(step):
                if step == 0:
                    try:
                        barrier.wait()
                    except threading.BrokenBarrierError:
                        pass
                return inner(step)
            return data

        class AlternatingPlacer(FleetPlacer):
            """Pin chunk k to device k%2 so the two arrays really overlap."""

            def place(self, cohorts, load=None):
                pinned = []
                for i, d in enumerate(super().place(cohorts, load)):
                    device = self.devices[i % len(self.devices)]
                    estimate = self.estimate(d.plan, device)
                    d.plan.device = device.name
                    d.plan.projected_seconds = estimate.train_seconds
                    pinned.append(PlacementDecision(
                        plan=d.plan, device=device, estimate=estimate))
                return pinned

        steps = 12
        jobs = [make_job(i, steps=steps,
                         stop=stop_after(1) if i in (0, 1, 4, 5) else None,
                         data=synced_stream(1000 + i, steps)
                         if i in (0, 4) else None)
                for i in range(8)]
        fleet = FleetScheduler(
            devices=(V100, RTX6000), work_stealing=False,
            placer=AlternatingPlacer(devices=(V100, RTX6000), max_width=4))
        ids = fleet.submit_all(jobs)
        results = fleet.run_until_idle()

        assert len(results) == 8
        assert fleet.metrics.jobs_evicted == 4
        assert fleet.metrics.arrays_merged == 1
        merged_record = [r for r in fleet.metrics.records if r.merges]
        assert len(merged_record) == 1
        assert merged_record[0].jobs_served >= 4   # both halves' survivors
        for job, job_id in zip(jobs, ids):
            expected = 1 if job.stop else steps
            assert results[job_id].steps_trained == expected
            assert_checkpoint_matches(results[job_id], job)

    def test_defrag_can_be_disabled(self):
        jobs = [make_job(i, steps=6, stop=stop_after(1) if i < 2 else None)
                for i in range(4)]
        fleet = FleetScheduler(devices=(V100,), max_width=4, defrag=None)
        fleet.submit_all(jobs)
        results = fleet.run_until_idle()
        assert len(results) == 4
        assert fleet.metrics.jobs_evicted == 2    # eviction still on
        assert fleet.metrics.arrays_merged == 0

    def test_non_elastic_fleet_reproduces_legacy_behavior(self):
        jobs = [make_job(i, stop=stop_after(1)) for i in range(4)]
        fleet = FleetScheduler(devices=(V100,), max_width=4, elastic=False)
        ids = fleet.submit_all(jobs)
        results = fleet.run_until_idle()
        assert fleet.metrics.jobs_evicted == 0
        assert all(results[i].steps_trained == STEPS for i in ids)


# --------------------------------------------------------------------- #
class TestDefragPolicy:
    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="occupancy_threshold"):
            DefragPolicy(occupancy_threshold=0.0)
        with pytest.raises(ValueError, match="occupancy_threshold"):
            DefragPolicy(occupancy_threshold=1.5)

    def test_underfilled_requires_evictions_and_low_occupancy(self):
        class Probe:
            def __init__(self, evictions, live, launch):
                self.evictions, self.live_width = evictions, live
                self.launch_width = launch

        policy = DefragPolicy(occupancy_threshold=0.5)
        assert policy.underfilled(Probe(2, 2, 4))
        assert not policy.underfilled(Probe(0, 2, 4))   # never evicted
        assert not policy.underfilled(Probe(1, 3, 4))   # still well-filled
        assert not policy.underfilled(Probe(4, 0, 4))   # nothing live


# --------------------------------------------------------------------- #
class TestHfhtStopSignals:
    def test_median_stopper_kills_the_worst_trial(self):
        stopper = MedianStopper(warmup_epochs=1, min_trials=3)
        signals = {i: stopper.signal(i) for i in range(4)}
        curves = {0: [0.1], 1: [0.2], 2: [0.3], 3: [9.0]}
        # epoch 1: warmup, nobody stops
        assert not any(signals[i](1, curves[i]) for i in range(4))
        for i, c in curves.items():
            c.append(c[-1] * 0.9)
        # epoch 2: the outlier is above the median of its peers (which
        # needs min_trials peers to have reported the epoch first)
        assert not signals[0](2, curves[0])
        assert not signals[1](2, curves[1])
        assert not signals[2](2, curves[2])
        assert signals[3](2, curves[3])
        assert signals[3](3, curves[3])   # stays stopped

    def test_successive_halving_stops_losers_at_rungs(self):
        stopper = SuccessiveHalvingStopper(eta=2, min_epochs=1)
        signals = {i: stopper.signal(i) for i in range(4)}
        losses = {0: [0.1], 1: [0.2], 2: [0.3], 3: [0.4]}
        decisions = {}
        for i in (0, 1, 2, 3):
            decisions[i] = signals[i](1, losses[i])
        # rung at epoch 1: keep ceil(n/2) best of those seen at decision
        # time; the best trial always survives, the worst always stops
        assert not decisions[0]
        assert decisions[3]

    def test_median_stopper_drives_eviction_in_an_array(self):
        """End to end: the hfht early-stop signal wired into TrainingJob
        evicts the diverging trial from the fused array."""
        stopper = MedianStopper(warmup_epochs=1, min_trials=3)
        # four "trials": one with a catastophic learning rate diverges
        lrs = [1e-3, 1e-3, 1e-3, 30.0]
        jobs = [TrainingJob(
            name=f"trial{i}_lr{lr}", seed=i, steps=8,
            config={"lr": lr, "optimizer": "sgd"},
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=mlp_stream(2000 + i, 8), stop=stopper.signal(i))
            for i, lr in enumerate(lrs)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert engine.metrics.jobs_evicted >= 1
        diverged = results[ids[3]]
        assert diverged.stop_reason == StopReason.EARLY_STOP
        assert diverged.steps_trained < 8
        healthy = results[ids[0]]
        assert healthy.steps_trained == 8
