"""Property-based tests for the LP placement solver.

Every test here drives :mod:`repro.runtime.placement_lp` through
randomized-but-seeded instances (plain ``random.Random`` streams — the
suite bans unseeded randomness) and asserts the solver's *contracts*
rather than specific assignments:

* capacity — every rounded chunk fits its device's width cap, and no
  chunk lands on a device whose cap for the item is zero;
* conservation — every item is assigned exactly once (its chunk widths
  sum to its width, its indices partition its cohort);
* bounded migration — voluntary moves never exceed the instance budget;
* the greedy floor — the solved objective is never worse than the
  standalone greedy rounding scored under the same objective;
* feasibility agreement — the LP path and the scipy-free fallback raise
  :class:`~repro.runtime.placement_lp.InfeasiblePlacement` for exactly
  the same instances (the no-scipy CI leg runs this same file, so the
  fallback is held to the identical property set).
"""

import random

import pytest

import repro.runtime.placement_lp as placement_lp
from repro.runtime.batcher import Batcher
from repro.runtime.placement import FleetPlacer, synthetic_fleet
from repro.runtime.placement_lp import (InfeasiblePlacement, LPFleetPlacer,
                                        LPWeights, PlacementInstance,
                                        greedy_round, lp_available,
                                        score_assignment, solve_instance)
from repro.runtime.queue import JobQueue

from .conftest import make_sim_job

SEEDS = range(24)


def random_instance(seed, force_budget=None):
    """A feasible random instance: fleets of 1-6 devices, 1-8 items."""
    rng = random.Random(seed)
    n_dev = rng.randint(1, 6)
    n_items = rng.randint(1, 8)
    num_models = [rng.randint(1, 12) for _ in range(n_items)]
    steps = [rng.randint(1, 20) for _ in range(n_items)]
    rates = [[rng.uniform(0.1, 5.0) for _ in range(n_dev)]
             for _ in range(n_items)]
    caps = []
    for _ in range(n_items):
        row = [rng.choice((0, 0, 1, 2, 4, 8)) for _ in range(n_dev)]
        if not any(row):
            row[rng.randrange(n_dev)] = rng.choice((1, 2, 4, 8))
        caps.append(row)
    devices = [f"dev{d}" for d in range(n_dev)]
    slacks = [rng.choice((None, None, rng.uniform(-5.0, 50.0)))
              for _ in range(n_items)]
    current = []
    for i in range(n_items):
        if rng.random() < 0.5:
            current.append(None)
        else:
            current.append(rng.choice(devices))
    budget = force_budget if force_budget is not None \
        else rng.choice((None, 0, 1, 2, 3))
    loads = {name: rng.uniform(0.0, 10.0) for name in devices
             if rng.random() < 0.7}
    return PlacementInstance.from_tables(
        num_models=num_models, steps=steps, rates=rates, caps=caps,
        slacks=slacks, current=current, loads=loads,
        migration_budget=budget, devices=devices)


def assert_solution_legal(instance, solution):
    """The shared capacity/conservation/budget contract."""
    for i, chunks in enumerate(solution.assignment):
        item = instance.items[i]
        assert chunks, f"item {i} got no chunks"
        total = 0
        for d, width in chunks:
            cap = instance.caps[i][d]
            assert cap >= 1, (
                f"item {i} placed on zero-capacity device {d}")
            assert 1 <= width <= cap, (
                f"item {i} chunk width {width} exceeds cap {cap}")
            total += width
        assert total == item.num_models, (
            f"item {i} assigned {total}/{item.num_models} models")
    if instance.migration_budget is not None:
        assert len(solution.migrations) <= instance.migration_budget
    # the reported objective is exactly what the scorer recomputes
    objective, makespan = score_assignment(instance, solution.assignment)
    assert objective == pytest.approx(solution.objective)
    assert makespan == pytest.approx(solution.makespan)


@pytest.mark.parametrize("seed", SEEDS)
def test_solution_respects_capacity_and_conservation(seed):
    instance = random_instance(seed)
    assert_solution_legal(instance, solve_instance(instance))


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_respects_same_contract(seed):
    """The standalone greedy rounder obeys the identical property set."""
    instance = random_instance(seed)
    solution = solve_instance(instance, use_lp=False)
    assert solution.solver == "greedy"
    assert_solution_legal(instance, solution)


@pytest.mark.parametrize("seed", SEEDS)
def test_objective_never_worse_than_greedy(seed):
    """The solved objective is the greedy rounding's or better — the LP
    path is pure upside over the fallback, never a regression."""
    instance = random_instance(seed)
    solved = solve_instance(instance)
    greedy = greedy_round(instance, None)
    greedy_objective, _ = score_assignment(instance, greedy)
    assert solved.objective <= greedy_objective + 1e-9


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("budget", [0, 1, 2])
def test_migrations_bounded_by_budget(seed, budget):
    instance = random_instance(seed, force_budget=budget)
    for use_lp in (True, False):
        solution = solve_instance(instance, use_lp=use_lp)
        assert len(solution.migrations) <= budget
        if budget == 0:
            assert solution.migrations == []


@pytest.mark.parametrize("seed", SEEDS)
def test_lp_and_fallback_agree_on_feasibility(seed):
    """Both solver paths accept exactly the same instances.

    Feasibility is a property of the *instance* (an item some device can
    hold), not of the solver: construction raises for infeasible tables
    before either path runs, and both paths solve every feasible one.
    """
    instance = random_instance(seed)
    for use_lp in (True, False):
        solution = solve_instance(instance, use_lp=use_lp)
        assert all(solution.assignment)


@pytest.mark.parametrize("n_dev", [1, 3])
def test_infeasible_instance_raises_identically(n_dev):
    """An item no device can hold raises on both paths — the same
    feasibility verdict whether or not scipy is importable."""
    with pytest.raises(InfeasiblePlacement):
        PlacementInstance.from_tables(
            num_models=[2, 4], steps=[1, 1],
            rates=[[1.0] * n_dev, [1.0] * n_dev],
            caps=[[4] * n_dev, [0] * n_dev])


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_matches_lp_contract_without_scipy(seed, monkeypatch):
    """With scipy forcibly absent the solver degrades to the greedy
    rounder and the full contract still holds (this is the code path the
    no-scipy CI job exercises natively)."""
    monkeypatch.setattr(placement_lp, "_linprog", None)
    assert not lp_available()
    instance = random_instance(seed)
    solution = solve_instance(instance)
    assert solution.solver == "greedy"
    assert solution.relaxed_objective is None
    assert_solution_legal(instance, solution)


def test_lp_improves_on_greedy_when_it_can():
    """On an instance built to punish myopic placement (one fast
    low-capacity device, one slow wide one) the LP solve must actually
    beat the standalone rounding, not just tie it."""
    if not lp_available():
        pytest.skip("scipy absent: no relaxation to improve with")
    instance = PlacementInstance.from_tables(
        num_models=[8, 8, 8], steps=[10, 10, 10],
        rates=[[1.0, 0.2], [1.0, 0.2], [1.0, 0.2]],
        caps=[[8, 2], [8, 2], [8, 2]],
        weights=LPWeights(makespan=1.0, completion=0.01, defrag=0.0))
    solved = solve_instance(instance)
    greedy_objective, _ = score_assignment(
        instance, greedy_round(instance, None))
    assert solved.objective <= greedy_objective


def test_weights_reject_negative_values():
    with pytest.raises(ValueError):
        LPWeights(makespan=-1.0)


def test_urgency_scales_with_slack():
    """Less slack -> higher completion-cost multiplier, bounded by
    1 + slo_urgency; deadline-free items always weigh 1."""
    instance = PlacementInstance.from_tables(
        num_models=[1, 1, 1], steps=[10, 10, 10],
        rates=[[1.0], [1.0], [1.0]], caps=[[4], [4], [4]],
        slacks=[None, 100.0, 0.5],
        weights=LPWeights(slo_urgency=4.0))
    relaxed = instance.urgency(1)
    tight = instance.urgency(2)
    assert instance.urgency(0) == 1.0
    assert 1.0 < relaxed < tight <= 5.0


# --------------------------------------------------------------------- #
# the LPFleetPlacer seam (real cost model, real cohorts)
# --------------------------------------------------------------------- #
def _cohorts(num_jobs, steps=16, seed0=0):
    queue = JobQueue()
    for i in range(num_jobs):
        queue.submit(make_sim_job(seed0 + i, steps=steps))
    cohorts, failures = Batcher().form_cohorts(queue.pop_fair())
    assert not failures
    return cohorts


@pytest.mark.parametrize("num_jobs", [1, 5, 12, 23])
def test_placer_covers_every_cohort_exactly_once(num_jobs):
    placer = LPFleetPlacer(devices=synthetic_fleet(8), max_width=8)
    cohorts = _cohorts(num_jobs)
    decisions = placer.place(cohorts, now=0.0)
    for cohort in cohorts:
        indices = sorted(i for d in decisions if d.plan.cohort is cohort
                         for i in d.plan.indices)
        assert indices == list(range(cohort.num_models))
    for decision in decisions:
        workload = placer.resolve_workload(decision.plan)
        cap = placer.width_cap(workload, decision.device)
        assert len(decision.plan.indices) <= cap


def test_placer_is_deterministic():
    """Two placers over the same fleet and cohorts emit byte-identical
    decision sequences (no wall clock, no unseeded tie-breaks)."""
    runs = []
    for _ in range(2):
        placer = LPFleetPlacer(devices=synthetic_fleet(8), max_width=8)
        decisions = placer.place(_cohorts(14), now=0.0)
        runs.append([(d.device_name, tuple(d.plan.indices))
                     for d in decisions])
    assert runs[0] == runs[1]


def test_placer_objective_never_worse_than_greedy_policy():
    """The LP policy's solved objective is at most the greedy baseline
    assignment's score under the same instance/weights."""
    fleet = synthetic_fleet(8)
    lp = LPFleetPlacer(devices=fleet, max_width=8)
    greedy = FleetPlacer(devices=fleet, max_width=8)
    cohorts = _cohorts(14)
    lp.place(list(cohorts), now=0.0)
    instance = lp.last_instance
    # re-score the greedy baseline's actual chunk choices on the same
    # instance: map each greedy decision back to (device index, width)
    by_name = {name: idx for idx, name in enumerate(instance.devices)}
    greedy_assignment = [[] for _ in instance.items]
    for decision in greedy.place(list(cohorts), now=0.0):
        cohort_idx = cohorts.index(decision.plan.cohort)
        greedy_assignment[cohort_idx].append(
            (by_name[decision.device_name], len(decision.plan.indices)))
    greedy_objective, _ = score_assignment(instance, greedy_assignment)
    assert lp.last_solution.objective <= greedy_objective + 1e-9


def test_migration_budget_protocol():
    """begin_cycle(0) freezes voluntary moves; a budget of one allows
    exactly one; a forced move (home cannot hold the array) is exempt."""
    fleet = synthetic_fleet(4)
    placer = LPFleetPlacer(devices=fleet, max_width=8,
                           weights=LPWeights(migration=0.0))

    class FakeExecutor:
        live_width = 2
        remaining_steps = 50
        workload = None

    loads = {d.name: 0.0 for d in fleet}
    # make the current device maximally unattractive
    slow = max(fleet, key=lambda d: placer._base_estimate(
        placer.resolve_workload(FakeExecutor), d, 2).iteration_time_s)
    loads[slow.name] = 1000.0

    placer.begin_cycle(0)
    assert placer.migration_target(FakeExecutor(), slow.name, loads) is None

    placer.begin_cycle(1)
    first = placer.migration_target(FakeExecutor(), slow.name, loads)
    assert first is not None and first != slow.name
    # budget spent: an identical second request is refused
    assert placer.migration_target(FakeExecutor(), slow.name, loads) is None

    # forced move: no device fits width 99 except... none; target is None
    class TooWide(FakeExecutor):
        live_width = 99
    placer.begin_cycle(0)
    assert placer.migration_target(TooWide(), slow.name, loads) is None
