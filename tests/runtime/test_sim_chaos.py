"""Chaos testing in simulation: kill devices at virtual-time points.

The fleet's ``chaos`` hook raises :class:`~repro.runtime.sim.
SimulatedCrash` (a ``BaseException``, so it bypasses the array-level
quarantine handlers) at an epoch boundary, killing the simulated device
mid-array exactly the way a dead worker thread does in the real backend
— the crash sweep finds the orphaned executor, quarantines the device,
and the WAL + checkpoint store drive recovery.

What must survive the murder:

* **bit-identical recovery** — with ``checkpoint_every=1``, the
  recovered run's loss curves and trained-step counts are bit-identical
  to an uninterrupted run's (crash recovery may change *where* jobs run,
  never *what* they compute);
* **exactly-once completion** — every job completes exactly once; the
  WAL settles (no unsettled admissions remain) and records the crash;
* **SLO protection** — a priority tenant with deadlines on every job
  sees zero SLO misses even when a device dies mid-trace.
"""

import random

import pytest

from repro.cluster import ServingTraceConfig, TenantLoad, \
    generate_serving_trace
from repro.runtime import CheckpointStore, FleetScheduler, JobState, \
    LPFleetPlacer, LPWeights, RecoveryManager, ServingGateway, TenantSpec, \
    TraceReplayer, synthetic_fleet

from .conftest import make_sim_job

JOBS = 12
STEPS = 6
EPOCH_STEPS = 2


def make_jobs():
    return [make_sim_job(i, steps=STEPS, epoch_steps=EPOCH_STEPS)
            for i in range(JOBS)]


def run_sim_fleet(tmp_path, subdir, kill_at=None, victim=None):
    """One sim serving run; optionally murder ``victim`` at virtual time
    ``kill_at``.  Returns (fleet, results, recovery)."""
    store = CheckpointStore(tmp_path / subdir)
    recovery = RecoveryManager(store)
    fleet = FleetScheduler(devices=synthetic_fleet(3), max_width=4,
                           execution="sim", store=store,
                           checkpoint_every=1, recovery=recovery)
    if kill_at is not None:
        fired = []

        def chaos(device_name, executor):
            if not fired and device_name == victim \
                    and fleet.clock() >= kill_at:
                fired.append((device_name, fleet.clock()))
                return True
            return False

        fleet.chaos = chaos
    fleet.submit_all(make_jobs())
    results = fleet.run_until_idle()
    return fleet, results, recovery


def curves(results):
    return {r.name: (r.steps_trained, tuple(r.loss_curve))
            for r in results.values()}


class TestChaosRecovery:
    def test_device_killed_at_virtual_time_recovers_bit_identical(
            self, tmp_path):
        reference, expected, _ = run_sim_fleet(tmp_path, "reference")
        assert reference.metrics.workers_crashed == 0
        # pick the victim *from the reference run*: the device that was
        # busiest is guaranteed to hold live arrays at the kill point
        busiest = max(reference.metrics.device_summary().items(),
                      key=lambda kv: kv[1]["busy_seconds"])[0]

        fleet, results, recovery = run_sim_fleet(
            tmp_path, "chaos", kill_at=0.0, victim=busiest)

        assert fleet.metrics.workers_crashed == 1
        assert fleet.metrics.jobs_recovered > 0
        assert len(results) == JOBS
        assert fleet.metrics.jobs_completed == JOBS      # exactly once
        for job_id in results:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
        # recovery changed *where* jobs ran, never *what* they computed
        assert curves(results) == curves(expected)
        # the WAL recorded the crash and settled every admission
        events = [r for r in recovery.entries() if r["type"] == "array"]
        assert any(r["event"] == "crash" for r in events)
        assert recovery.unsettled() == {}

    @pytest.mark.parametrize("seed", range(4))
    def test_random_device_random_virtual_time(self, tmp_path, seed):
        """Property form: any device, any virtual-time kill point — the
        outcome is always bit-identical to the uninterrupted run."""
        rng = random.Random(5_000 + seed)
        _, expected, _ = run_sim_fleet(tmp_path, "reference")
        fleet, results, recovery = run_sim_fleet(
            tmp_path, f"chaos{seed}",
            kill_at=rng.uniform(0.0, 0.2),
            victim=rng.choice(sorted(fleet_device_names())))
        # the random victim may have been idle at the kill point; either
        # way every job completes exactly once with identical state
        assert fleet.metrics.workers_crashed <= 1
        assert len(results) == JOBS
        assert fleet.metrics.jobs_completed == JOBS
        assert curves(results) == curves(expected)
        assert recovery.unsettled() == {}


def fleet_device_names():
    return [device.name for device in synthetic_fleet(3)]


class TestChaosMidMigration:
    """Device death *mid-migration* (the LP optimizer's moving parts).

    The LP policy migrates live arrays between devices at epoch
    boundaries; a device that dies while hosting a freshly migrated
    array is the nastiest interleaving the WAL has to get right — the
    array's provenance spans two devices, and the recovery sweep must
    re-queue its in-flight cohort exactly once so the next solve can
    re-place it without double-assignment.
    """

    MJOBS = 10
    MSTEPS = 40

    def run_lp_fleet(self, tmp_path, subdir, kill_migrated=False):
        """An LP-placement sim run that provably migrates; optionally
        kill the migration *target* while it steps the migrated array."""
        store = CheckpointStore(tmp_path / subdir)
        recovery = RecoveryManager(store)
        # zero hysteresis: any marginal improvement migrates, so this
        # small trace reliably exercises the mover
        placer = LPFleetPlacer(devices=synthetic_fleet(3), max_width=4,
                               weights=LPWeights(migration=0.0))
        fleet = FleetScheduler(placer=placer, execution="sim",
                               migration_budget=8, store=store,
                               checkpoint_every=1, recovery=recovery)
        fleet.metrics.enable_decision_log()
        if kill_migrated:
            fired = []

            def chaos(device_name, executor):
                if fired:
                    return False
                for _, payload in fleet.metrics.decisions("migrate"):
                    array_id, _, target = payload
                    if device_name == target \
                            and executor.array_id == array_id:
                        fired.append((device_name, array_id))
                        return True
                return False

            fleet.chaos = chaos
        fleet.submit_all([make_sim_job(i, steps=self.MSTEPS,
                                       epoch_steps=2)
                          for i in range(self.MJOBS)])
        results = fleet.run_until_idle()
        return fleet, results, recovery

    def test_migration_target_dies_while_stepping_migrated_array(
            self, tmp_path):
        reference, expected, _ = self.run_lp_fleet(tmp_path, "reference")
        assert reference.metrics.migrations_emitted > 0
        assert reference.metrics.workers_crashed == 0

        fleet, results, recovery = self.run_lp_fleet(
            tmp_path, "chaos", kill_migrated=True)

        # the victim really was a migration target running the moved
        # array (the chaos hook only fires on that exact interleaving)
        assert fleet.metrics.migrations_emitted > 0
        assert fleet.metrics.workers_crashed == 1
        migrated_ids = {payload[0] for _, payload
                        in fleet.metrics.decisions("migrate")}
        crash_events = [r for r in recovery.entries()
                        if r["type"] == "array" and r["event"] == "crash"]
        assert len(crash_events) == 1
        assert crash_events[0]["array_id"] in migrated_ids

        # the WAL carries the move itself: provenance spans both devices
        migrate_events = [r for r in recovery.entries()
                          if r["type"] == "array"
                          and r["event"] == "migrate"]
        assert migrate_events, "migration was never journaled"

        # exactly-once: the in-flight migrated cohort was re-queued once,
        # re-placed by a later solve, and nothing completed twice
        assert len(results) == self.MJOBS
        assert fleet.metrics.jobs_completed == self.MJOBS
        for job_id in results:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
        assert fleet.metrics.jobs_recovered > 0
        assert fleet.metrics.lp_solves >= 2, \
            "recovery never reached a re-solve"
        assert recovery.unsettled() == {}

        # recovery changed *where* jobs ran, never *what* they computed
        assert curves(results) == curves(expected)


class TestChaosUnderServingLoad:
    def test_priority_tenant_rides_through_a_device_death(self, tmp_path):
        """A 40-job three-tenant trace; one device dies mid-trace.  The
        deadline-carrying priority tenant must not miss a single SLO."""
        trace = generate_serving_trace(ServingTraceConfig(
            num_jobs=40, duration_s=600.0, seed=7,
            tenants=(TenantLoad("batch", share=3.0),
                     TenantLoad("prio", share=1.0, priority=2,
                                deadline_s=1800.0, deadline_rate=1.0)),
            mean_burst_size=6.0, max_burst_size=12,
            steps_choices=(4, 8), epoch_steps_choices=(2,)))
        store = CheckpointStore(tmp_path / "gateway")
        gateway = ServingGateway(
            tenants=(TenantSpec("batch", weight=1.0),
                     TenantSpec("prio", weight=4.0, priority=2)),
            max_pending=64,
            devices=synthetic_fleet(3), max_width=4, execution="sim",
            store=store, checkpoint_every=1,
            recovery=RecoveryManager(store))
        fired = []

        def chaos(device_name, executor):
            if not fired and gateway.fleet.clock() >= 60.0:
                fired.append(device_name)
                return True
            return False

        gateway.fleet.chaos = chaos

        def job_factory(event):
            return make_sim_job(
                event.seed, steps=event.steps,
                epoch_steps=event.epoch_steps, name=event.name,
                tenant=event.tenant, user=event.user,
                priority=event.priority, workload=event.workload)

        replayer = TraceReplayer(gateway, trace, job_factory,
                                 cycle_quantum_s=30.0)
        results = replayer.run()

        assert fired, "chaos hook never fired"
        assert gateway.metrics.workers_crashed == 1
        assert len(results) == 40
        assert not replayer.rejected
        summary = gateway.metrics.tenant_summary()
        assert summary["prio"]["slo_misses"] == 0
        assert summary["prio"]["slo_hits"] == summary["prio"]["submitted"]
