"""Chaos testing in simulation: kill devices at virtual-time points.

The fleet's ``chaos`` hook raises :class:`~repro.runtime.sim.
SimulatedCrash` (a ``BaseException``, so it bypasses the array-level
quarantine handlers) at an epoch boundary, killing the simulated device
mid-array exactly the way a dead worker thread does in the real backend
— the crash sweep finds the orphaned executor, quarantines the device,
and the WAL + checkpoint store drive recovery.

What must survive the murder:

* **bit-identical recovery** — with ``checkpoint_every=1``, the
  recovered run's loss curves and trained-step counts are bit-identical
  to an uninterrupted run's (crash recovery may change *where* jobs run,
  never *what* they compute);
* **exactly-once completion** — every job completes exactly once; the
  WAL settles (no unsettled admissions remain) and records the crash;
* **SLO protection** — a priority tenant with deadlines on every job
  sees zero SLO misses even when a device dies mid-trace.
"""

import random

import pytest

from repro.cluster import ServingTraceConfig, TenantLoad, \
    generate_serving_trace
from repro.runtime import CheckpointStore, FleetScheduler, JobState, \
    RecoveryManager, ServingGateway, TenantSpec, TraceReplayer, \
    synthetic_fleet

from .conftest import make_sim_job

JOBS = 12
STEPS = 6
EPOCH_STEPS = 2


def make_jobs():
    return [make_sim_job(i, steps=STEPS, epoch_steps=EPOCH_STEPS)
            for i in range(JOBS)]


def run_sim_fleet(tmp_path, subdir, kill_at=None, victim=None):
    """One sim serving run; optionally murder ``victim`` at virtual time
    ``kill_at``.  Returns (fleet, results, recovery)."""
    store = CheckpointStore(tmp_path / subdir)
    recovery = RecoveryManager(store)
    fleet = FleetScheduler(devices=synthetic_fleet(3), max_width=4,
                           execution="sim", store=store,
                           checkpoint_every=1, recovery=recovery)
    if kill_at is not None:
        fired = []

        def chaos(device_name, executor):
            if not fired and device_name == victim \
                    and fleet.clock() >= kill_at:
                fired.append((device_name, fleet.clock()))
                return True
            return False

        fleet.chaos = chaos
    fleet.submit_all(make_jobs())
    results = fleet.run_until_idle()
    return fleet, results, recovery


def curves(results):
    return {r.name: (r.steps_trained, tuple(r.loss_curve))
            for r in results.values()}


class TestChaosRecovery:
    def test_device_killed_at_virtual_time_recovers_bit_identical(
            self, tmp_path):
        reference, expected, _ = run_sim_fleet(tmp_path, "reference")
        assert reference.metrics.workers_crashed == 0
        # pick the victim *from the reference run*: the device that was
        # busiest is guaranteed to hold live arrays at the kill point
        busiest = max(reference.metrics.device_summary().items(),
                      key=lambda kv: kv[1]["busy_seconds"])[0]

        fleet, results, recovery = run_sim_fleet(
            tmp_path, "chaos", kill_at=0.0, victim=busiest)

        assert fleet.metrics.workers_crashed == 1
        assert fleet.metrics.jobs_recovered > 0
        assert len(results) == JOBS
        assert fleet.metrics.jobs_completed == JOBS      # exactly once
        for job_id in results:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
        # recovery changed *where* jobs ran, never *what* they computed
        assert curves(results) == curves(expected)
        # the WAL recorded the crash and settled every admission
        events = [r for r in recovery.entries() if r["type"] == "array"]
        assert any(r["event"] == "crash" for r in events)
        assert recovery.unsettled() == {}

    @pytest.mark.parametrize("seed", range(4))
    def test_random_device_random_virtual_time(self, tmp_path, seed):
        """Property form: any device, any virtual-time kill point — the
        outcome is always bit-identical to the uninterrupted run."""
        rng = random.Random(5_000 + seed)
        _, expected, _ = run_sim_fleet(tmp_path, "reference")
        fleet, results, recovery = run_sim_fleet(
            tmp_path, f"chaos{seed}",
            kill_at=rng.uniform(0.0, 0.2),
            victim=rng.choice(sorted(fleet_device_names())))
        # the random victim may have been idle at the kill point; either
        # way every job completes exactly once with identical state
        assert fleet.metrics.workers_crashed <= 1
        assert len(results) == JOBS
        assert fleet.metrics.jobs_completed == JOBS
        assert curves(results) == curves(expected)
        assert recovery.unsettled() == {}


def fleet_device_names():
    return [device.name for device in synthetic_fleet(3)]


class TestChaosUnderServingLoad:
    def test_priority_tenant_rides_through_a_device_death(self, tmp_path):
        """A 40-job three-tenant trace; one device dies mid-trace.  The
        deadline-carrying priority tenant must not miss a single SLO."""
        trace = generate_serving_trace(ServingTraceConfig(
            num_jobs=40, duration_s=600.0, seed=7,
            tenants=(TenantLoad("batch", share=3.0),
                     TenantLoad("prio", share=1.0, priority=2,
                                deadline_s=1800.0, deadline_rate=1.0)),
            mean_burst_size=6.0, max_burst_size=12,
            steps_choices=(4, 8), epoch_steps_choices=(2,)))
        store = CheckpointStore(tmp_path / "gateway")
        gateway = ServingGateway(
            tenants=(TenantSpec("batch", weight=1.0),
                     TenantSpec("prio", weight=4.0, priority=2)),
            max_pending=64,
            devices=synthetic_fleet(3), max_width=4, execution="sim",
            store=store, checkpoint_every=1,
            recovery=RecoveryManager(store))
        fired = []

        def chaos(device_name, executor):
            if not fired and gateway.fleet.clock() >= 60.0:
                fired.append(device_name)
                return True
            return False

        gateway.fleet.chaos = chaos

        def job_factory(event):
            return make_sim_job(
                event.seed, steps=event.steps,
                epoch_steps=event.epoch_steps, name=event.name,
                tenant=event.tenant, user=event.user,
                priority=event.priority, workload=event.workload)

        replayer = TraceReplayer(gateway, trace, job_factory,
                                 cycle_quantum_s=30.0)
        results = replayer.run()

        assert fired, "chaos hook never fired"
        assert gateway.metrics.workers_crashed == 1
        assert len(results) == 40
        assert not replayer.rejected
        summary = gateway.metrics.tenant_summary()
        assert summary["prio"]["slo_misses"] == 0
        assert summary["prio"]["slo_hits"] == summary["prio"]["submitted"]
