"""Incremental (dirty-slot) checkpointing and zero-copy restore (PR 8).

``ArrayExecutor`` tracks each slot's ``progress`` at its last durable
write; a slot that has not stepped since is *clean* and a cadence sweep
skips it without encoding a byte — write amplification drops from
O(live slots) per sweep to O(dirty slots).  These tests pin:

* a no-op durability sweep writes **zero new objects** (and the
  content-addressed dedup receipt backs up a forced re-encode);
* recovery from dirty-slot-only snapshots after a mid-epoch crash is
  **bit-identical** to an uninterrupted run;
* a clean slot's *final* checkpoint reuses the stored objects
  manifest-only (``save_slot(objects=...)``);
* ``decode_arrays`` hands out writable zero-copy views of a writable
  payload buffer instead of copying every restored array.
"""

import numpy as np

from repro.runtime import CheckpointStore, TrainingArrayEngine
from repro.runtime.checkpoint import decode_arrays, encode_arrays

from .test_checkpoint import (CRASH_STEP, STEPS, assert_bit_identical,
                              final_params, make_jobs)


def build_executor(engine, jobs):
    """One prepared executor fusing ``jobs`` (manual epoch driving)."""
    engine.submit_all(jobs)
    batch = engine.queue.pop_pending()
    cohorts, _ = engine.batcher.form_cohorts(batch)
    (plan,) = engine.policy.plan(cohorts)
    executor = engine.make_executor(plan)
    executor.prepare()
    return executor


# --------------------------------------------------------------------- #
class TestDirtySlotTracking:
    def test_noop_sweep_writes_zero_new_objects(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store)
        executor = build_executor(engine, make_jobs(3))
        executor.step_epoch()

        executor.checkpoint_now()                 # all slots dirty: writes
        objects = store.objects_written
        written = engine.metrics.checkpoints_written
        assert objects > 0 and written == 3

        executor.checkpoint_now()                 # nothing stepped: no-op
        assert store.objects_written == objects
        assert store.bytes_written == engine.metrics.checkpoint_bytes_written
        assert engine.metrics.checkpoints_written == written
        assert engine.metrics.checkpoints_skipped == 3

    def test_forced_sweep_is_fully_deduplicated(self, tmp_path):
        """force=True re-encodes clean slots; content addressing proves
        the skipped encodes were byte-identical (the dedup receipt)."""
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store)
        executor = build_executor(engine, make_jobs(2))
        executor.step_epoch()
        executor.checkpoint_now()
        objects, disk = store.objects_written, store.bytes_written

        executor.checkpoint_now(force=True)
        assert store.objects_written == objects   # every object deduped
        assert store.bytes_written == disk
        assert store.dedup_hits >= 4              # model+optimizer per slot
        assert engine.metrics.checkpoints_written == 4

    def test_stepping_marks_slots_dirty_again(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store)
        executor = build_executor(engine, make_jobs(2))
        executor.step_epoch()
        executor.checkpoint_now()
        objects = store.objects_written

        executor.step_epoch()                     # slots move again
        executor.checkpoint_now()
        assert store.objects_written > objects
        assert engine.metrics.checkpoints_skipped == 0

    def test_incremental_disabled_always_reencodes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store,
                                     checkpoint_incremental=False)
        executor = build_executor(engine, make_jobs(2))
        executor.step_epoch()
        executor.checkpoint_now()
        payload = engine.metrics.checkpoint_payload_bytes
        executor.checkpoint_now()                 # re-encodes (then dedups)
        assert engine.metrics.checkpoints_skipped == 0
        assert engine.metrics.checkpoint_payload_bytes == 2 * payload

    def test_write_amplification_halves_on_sweep_heavy_cadence(
            self, tmp_path):
        """The acceptance workload: a cadence checkpoint plus durability
        sweeps every epoch.  Incremental tracking encodes each slot once
        per epoch instead of three times — >=50% fewer payload bytes."""
        def run(incremental):
            store = CheckpointStore(tmp_path / f"inc-{incremental}")
            engine = TrainingArrayEngine(
                store=store, checkpoint_every=1,
                checkpoint_incremental=incremental)
            executor = build_executor(engine, make_jobs(3))
            while not executor.done:
                executor.step_epoch()             # cadence persists here
                executor.checkpoint_now()         # sweeps: clean slots
                executor.checkpoint_now()
            return engine.metrics.checkpoint_payload_bytes

        legacy = run(False)
        incremental = run(True)
        assert incremental <= 0.5 * legacy

    def test_clean_final_checkpoint_reuses_objects_manifest_only(
            self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store)
        executor = build_executor(engine, make_jobs(2))
        executor.step_epoch()
        executor.checkpoint_now()
        objects = store.objects_written
        before = store.manifest(executor.slots[0].sub.job_id)

        executor._persist_slot(0, executor.slots[0], final=True,
                               stop_reason="cancelled")
        after = store.manifest(executor.slots[0].sub.job_id)
        assert store.objects_written == objects   # manifest-only rewrite
        assert after["final"] is True
        assert after["objects"] == before["objects"]

        restored = store.load_slot(executor.slots[0].sub.job_id)
        assert restored.progress == executor.slots[0].progress
        assert restored.model_state          # objects still load fine

    def test_stale_refs_raise_and_tracker_recovers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store)
        executor = build_executor(engine, make_jobs(2))
        executor.step_epoch()
        executor.checkpoint_now()
        slot = executor.slots[0]
        slot.persist_refs = {"model": "0" * 64, "optimizer": "0" * 64}

        executor._persist_slot(0, slot, final=True)   # stale refs raise...
        assert engine.metrics.checkpoint_failures == 1
        assert slot.persist_refs is None              # ...and are dropped

        executor._persist_slot(0, slot, final=True)   # re-encodes cleanly
        assert engine.metrics.checkpoint_failures == 1
        assert store.manifest(slot.sub.job_id)["final"] is True


# --------------------------------------------------------------------- #
class TestCrashRecoveryWithIncrementalCheckpoints:
    def test_midepoch_crash_recovers_bit_identical(self, tmp_path):
        """Dirty-slot-only snapshots carry full recoverability: resuming
        after a mid-epoch crash reproduces an uninterrupted run bitwise
        (incremental checkpointing changes what is *re-encoded*, never
        what is durable)."""
        reference = TrainingArrayEngine()
        reference.submit_all(make_jobs(3))
        expected = final_params(reference.run_until_idle())

        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store, checkpoint_every=1)
        assert engine.checkpoint_incremental      # the default
        trigger = [True]
        jobs = make_jobs(3)

        def failing(step, inner=jobs[0].data):
            if step == CRASH_STEP and trigger:
                trigger.pop()
                raise IOError("data stream broke mid-epoch")
            return inner(step)

        jobs[0].data = failing
        engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert len(results) == 3
        assert engine.metrics.jobs_recovered == 3
        assert_bit_identical(expected, final_params(results))
        for result in results.values():
            manifest = store.manifest(result.job_id)
            assert manifest["final"] is True
            assert manifest["progress"] == STEPS


# --------------------------------------------------------------------- #
class TestDecodeArraysZeroCopy:
    def _arrays(self):
        rng = np.random.default_rng(7)
        return {"w": rng.standard_normal((16, 8)).astype(np.float32),
                "step": np.arange(4, dtype=np.float64)}

    def test_writable_payload_decodes_to_views(self):
        arrays = self._arrays()
        payload = bytearray(encode_arrays(arrays))
        decoded = decode_arrays(payload)
        for name, value in arrays.items():
            np.testing.assert_array_equal(decoded[name], value)
            assert decoded[name].flags.writeable
            assert np.shares_memory(decoded[name],
                                    np.frombuffer(payload, dtype=np.uint8))

    def test_readonly_payload_still_decodes_writable(self):
        arrays = self._arrays()
        payload = encode_arrays(arrays)        # bytes: read-only buffer
        decoded = decode_arrays(payload)
        for name, value in arrays.items():
            np.testing.assert_array_equal(decoded[name], value)
            assert decoded[name].flags.writeable
        decoded["w"][0, 0] = 42.0              # must not raise

    def test_store_restore_path_is_writable_in_place(self, tmp_path):
        """The executor writes resume state into restored arrays in
        place; the zero-copy load path must hand it writable memory."""
        store = CheckpointStore(tmp_path)
        payload = store._get_object(
            store._put_object(encode_arrays(self._arrays()))[0])
        assert isinstance(payload, bytearray)
        decoded = decode_arrays(payload)
        decoded["w"][...] = 1.5                # in-place restore write
        assert float(decoded["w"][3, 3]) == 1.5
