"""Shared fixtures for the runtime suite.

The fleet tests run real worker threads; everything they assert is
synchronized explicitly (barriers/events), never by sleeping.  The one
remaining global hazard is code reaching the *unseeded* global RNGs —
this autouse fixture pins them per test so any such path is reproducible
across runs and interpreters (the job streams themselves already use
``np.random.default_rng(seed)`` generators).
"""

import random

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    np.random.seed(0)
    random.seed(0)
