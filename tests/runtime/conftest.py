"""Shared fixtures for the runtime suite.

The fleet tests run real worker threads; everything they assert is
synchronized explicitly (barriers/events), never by sleeping.  A deflake
audit (PR 6) holds this suite to two rules:

* **no wall-clock waits** — ``time.sleep`` and ``time.monotonic``
  assertions are banned; anything timing-related runs against an
  injectable clock (:class:`repro.runtime.VirtualClock` in the sim
  suites, manual closures elsewhere);
* **no unseeded randomness** — the autouse fixture below pins the global
  RNGs per test so any code path reaching them is reproducible across
  runs and interpreters (the job streams themselves already use
  ``np.random.default_rng(seed)`` generators), and the property-based
  sim tests derive all their choices from per-test ``random.Random``
  instances.

The sim helpers (a minimal fusible architecture plus job/data factories)
are shared here because the three simulation suites — invariants, chaos,
real-vs-sim equivalence — all drive the same tiny model through the
virtual-time backend.
"""

import random

import numpy as np
import pytest

from repro import nn
from repro.hfta.ops.factory import OpsLibrary
from repro.runtime import TrainingJob, VirtualClock

SIM_FEATURES, SIM_CLASSES = 4, 2


class SimNet(nn.Module):
    """Minimal fusible architecture for the simulation suites."""

    def __init__(self, hidden=2, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(SIM_FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, SIM_CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


def build_sim_model(num_models=None, generator=None):
    return SimNet(2, num_models, generator)


def sim_data(step):
    """Sim executors never read the data stream; losses are synthetic."""
    return (None, None)


def make_sim_job(index, steps=4, epoch_steps=2, **kwargs):
    """A budget-only job for the simulation backend."""
    return TrainingJob(
        name=kwargs.pop("name", f"sim{index}"), build_model=build_sim_model,
        data=sim_data, steps=steps, epoch_steps=epoch_steps, seed=index,
        **kwargs)


@pytest.fixture
def virtual_clock():
    return VirtualClock()


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    np.random.seed(0)
    random.seed(0)
