"""Tests for durable checkpointing and crash recovery.

Three layers under test:

* the :class:`CheckpointStore` object model — content addressing,
  atomic publication, dedup, manifest provenance;
* the engine wiring — ``checkpoint_every`` cadence, ``persist_on_evict``
  final checkpoints, resume payloads applied bit-exactly;
* the fleet/gateway crash path — a worker thread is *murdered* (a
  ``BaseException`` that bypasses every failure-isolation handler, the
  in-process stand-in for ``kill -9``) mid-epoch, and the recovered run
  must produce checkpoints **bit-identical** to an uninterrupted run:
  crash recovery, like every other elastic transition, changes when and
  with whom a job trains, never what it learns.

The recovery procedure these tests exercise is documented as the
operator runbook in ``docs/operations.md``.
"""

import threading

import numpy as np
import pytest

from repro import nn
from repro.hfta.ops.factory import OpsLibrary
from repro.hwsim import RTX6000, V100
from repro.runtime import (CheckpointStore, FleetScheduler, JobState,
                           RecoveryManager, ServingGateway, TenantSpec,
                           TrainingArrayEngine, TrainingJob)
from repro.runtime.checkpoint import decode_arrays, encode_arrays

FEATURES, CLASSES, BATCH = 10, 3, 6
STEPS, EPOCH_STEPS = 12, 2          # 6 epochs per full-budget job
CRASH_STEP = 3 * EPOCH_STEPS        # first data fetch of epoch 4


class TinyMLP(nn.Module):
    """Minimal OpsLibrary model (same architecture as test_elastic)."""

    def __init__(self, hidden=8, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


class WorkerMurder(BaseException):
    """A hard kill: not an Exception, so it passes the engine's failure
    isolation and the fleet's worker-loop handler — the thread dies with
    its array mid-epoch, exactly like a segfault would take it."""


def stream(seed, steps=STEPS, crash_at=None, trigger=None):
    """A job's private data stream; optionally murders the worker once."""
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((BATCH, FEATURES)).astype(np.float32),
                rng.integers(0, CLASSES, size=BATCH))
               for _ in range(steps)]

    def data(step):
        if crash_at is not None and step == crash_at and trigger:
            trigger.pop()           # one-shot: the resumed run survives
            raise WorkerMurder("worker thread murdered")
        return batches[step]
    return data


def make_jobs(count=4, trigger=None, steps=STEPS, **kwargs):
    """``count`` fusible jobs; job 0 carries the murder weapon when a
    ``trigger`` list is provided."""
    jobs = []
    for i in range(count):
        crash_at = CRASH_STEP if (i == 0 and trigger is not None) else None
        jobs.append(TrainingJob(
            name=f"job{i}", seed=i, steps=steps, epoch_steps=EPOCH_STEPS,
            config={"lr": 1e-3 * (i + 1), "optimizer": "adam"},
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=stream(100 + i, steps, crash_at, trigger), **kwargs))
    return jobs


def final_params(results):
    """name -> {param name -> array} for every JobResult."""
    return {r.name: {n: p.data.copy()
                     for n, p in r.checkpoint.named_parameters()}
            for r in results.values()}


def assert_bit_identical(expected, actual):
    assert set(expected) == set(actual)
    for name, params in expected.items():
        for pname, value in params.items():
            np.testing.assert_array_equal(
                actual[name][pname], value,
                err_msg=f"{name}.{pname} not bit-identical")


@pytest.fixture
def quiet_thread_deaths():
    """Suppress the default traceback print for murdered worker threads."""
    previous = threading.excepthook
    threading.excepthook = lambda args: None
    yield
    threading.excepthook = previous


# --------------------------------------------------------------------- #
class TestEncoding:
    def test_round_trip_preserves_bits_dtypes_and_shapes(self):
        rng = np.random.default_rng(0)
        arrays = {
            "w": rng.standard_normal((3, 4)).astype(np.float32),
            "b": rng.standard_normal(4),
            "step": np.asarray(7.0),
            "idx": np.arange(6, dtype=np.int64).reshape(2, 3),
        }
        decoded = decode_arrays(encode_arrays(arrays))
        assert set(decoded) == set(arrays)
        for name, value in arrays.items():
            assert decoded[name].dtype == np.asarray(value).dtype
            np.testing.assert_array_equal(decoded[name], value)

    def test_encoding_is_deterministic(self):
        arrays = {"a": np.ones(3, dtype=np.float32),
                  "b": np.zeros((2, 2))}
        assert encode_arrays(arrays) == encode_arrays(dict(reversed(
            list(arrays.items()))))

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError, match="magic"):
            decode_arrays(b"not a checkpoint")


class TestCheckpointStore:
    def test_content_addressing_deduplicates(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = make_jobs(1)[0]
        state = {"w": np.ones((2, 2), dtype=np.float32)}
        r1 = store.save_slot(job_id=0, job=job, progress=2, loss_curve=[1.0],
                             model_state=state, optimizer_state={},
                             provenance={"array_id": 0, "slot": 0})
        r2 = store.save_slot(job_id=1, job=job, progress=2, loss_curve=[1.0],
                             model_state=state, optimizer_state={},
                             provenance={"array_id": 0, "slot": 1})
        assert r1.written_bytes > 0 and not r1.deduplicated
        assert r2.written_bytes == 0 and r2.deduplicated
        assert store.dedup_hits >= 2      # model and optimizer objects
        assert store.object_count() == 2  # one model + one (empty) optim

    def test_manifest_records_provenance_and_latest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = make_jobs(1)[0]
        provenance = {"array_id": 7, "slot": 3, "live_width": 5,
                      "launch_width": 8, "device": "A100"}
        store.save_slot(job_id=4, job=job, progress=2, loss_curve=[2.0, 1.5],
                        model_state={"w": np.zeros(2)}, optimizer_state={},
                        provenance=provenance)
        store.save_slot(job_id=4, job=job, progress=4,
                        loss_curve=[2.0, 1.5, 1.2, 1.0],
                        model_state={"w": np.ones(2)}, optimizer_state={},
                        provenance=dict(provenance, live_width=2))
        manifest = store.manifest(4)
        assert manifest["progress"] == 4
        assert manifest["provenance"]["array_id"] == 7
        assert manifest["provenance"]["live_width"] == 2
        assert manifest["tenant"] == job.tenant
        assert store.job_ids() == [4]
        loaded = store.load_slot(4)
        np.testing.assert_array_equal(loaded.model_state["w"], np.ones(2))
        resume = loaded.resume_state()
        assert resume.progress == 4 and len(resume.loss_curve) == 4

    def test_missing_job_loads_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.manifest(99) is None
        assert store.load_slot(99) is None

    def test_no_temp_files_survive_a_save(self, tmp_path):
        store = CheckpointStore(tmp_path, fsync=True)
        job = make_jobs(1)[0]
        store.save_slot(job_id=0, job=job, progress=1, loss_curve=[],
                        model_state={"w": np.ones(4)}, optimizer_state={},
                        provenance={})
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp." in p.name]
        assert leftovers == []


# --------------------------------------------------------------------- #
class TestEngineCheckpointing:
    def test_checkpoint_every_cadence_and_final_manifests(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store, checkpoint_every=2)
        jobs = make_jobs(3)
        ids = engine.submit_all(jobs)
        engine.run_until_idle()
        # 6 epochs, cadence 2 -> boundaries at epochs 2 and 4 persist live
        # slots (the epoch-6 boundary retires everyone: persist_on_evict
        # writes the finals instead)
        assert engine.metrics.checkpoints_written == 3 * 2 + 3
        assert engine.metrics.checkpoint_payload_bytes > 0
        for job_id in ids:
            manifest = store.manifest(job_id)
            assert manifest["final"] is True
            assert manifest["progress"] == STEPS
            assert manifest["provenance"]["launch_width"] == 3

    def test_persist_on_evict_disabled_keeps_cadence_only(self, tmp_path):
        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store, checkpoint_every=2,
                                     persist_on_evict=False)
        engine.submit_all(make_jobs(2))
        engine.run_until_idle()
        assert engine.metrics.checkpoints_written == 2 * 2
        for job_id in store.job_ids():
            assert store.manifest(job_id)["final"] is False

    def test_checkpoint_restores_bit_exact_optimizer_state(self, tmp_path):
        """Kill an array mid-epoch (engine level), resume the quarantined
        jobs from their checkpoints, and verify the final checkpoints are
        bit-identical to an uninterrupted engine run — which can only
        happen if the optimizer moments and per-slot step counters were
        restored bit-exactly."""
        reference = TrainingArrayEngine()
        reference.submit_all(make_jobs(3))
        expected = final_params(reference.run_until_idle())

        store = CheckpointStore(tmp_path)
        engine = TrainingArrayEngine(store=store, checkpoint_every=1)
        trigger = [True]
        jobs = make_jobs(3, trigger=trigger)
        # job 0's stream raises WorkerMurder; at engine level that is an
        # ordinary failure... except BaseException bypasses the handler.
        # Use an Exception here instead: the engine's quarantine path must
        # *recover* (resume from checkpoints), not retrain from scratch.
        def failing(step, inner=jobs[0].data):
            if step == CRASH_STEP and trigger:
                trigger.pop()
                raise IOError("data stream broke mid-epoch")
            return inner(step)
        jobs[0].data = failing
        engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert len(results) == 3
        assert engine.metrics.arrays_failed == 1
        assert engine.metrics.jobs_recovered == 3
        assert_bit_identical(expected, final_params(results))

    def test_quarantine_without_store_restarts_from_scratch(self):
        """The pre-durability behavior still holds without a store: the
        quarantined jobs retrain solo from step 0 (and stay correct)."""
        reference = TrainingArrayEngine()
        reference.submit_all(make_jobs(2))
        expected = final_params(reference.run_until_idle())

        engine = TrainingArrayEngine()
        trigger = [True]
        jobs = make_jobs(2)
        def failing(step, inner=jobs[0].data):
            if step == CRASH_STEP and trigger:
                trigger.pop()
                raise IOError("broken")
            return inner(step)
        jobs[0].data = failing
        engine.submit_all(jobs)
        results = engine.run_until_idle()
        assert engine.metrics.jobs_recovered == 0
        assert_bit_identical(expected, final_params(results))


# --------------------------------------------------------------------- #
class TestFleetCrashRecovery:
    def test_murdered_worker_recovers_bit_identical(self, tmp_path,
                                                    quiet_thread_deaths):
        """The acceptance scenario: a worker thread is killed mid-epoch at
        epoch 3 of 6; the fleet detects the lost heartbeat's executor
        after the cycle, quarantines the device, re-queues the jobs from
        their durable checkpoints, and the restored run produces
        checkpoints bit-identical to an uninterrupted run."""
        reference = FleetScheduler(devices=(V100,), max_width=4)
        reference.submit_all(make_jobs(4))
        expected = final_params(reference.run_until_idle())

        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        fleet = FleetScheduler(devices=(V100, RTX6000), max_width=4,
                               store=store, checkpoint_every=1,
                               recovery=recovery)
        trigger = [True]
        ids = fleet.submit_all(make_jobs(4, trigger=trigger))
        results = fleet.run_until_idle()

        assert fleet.metrics.workers_crashed == 1
        assert fleet.metrics.jobs_recovered == 4
        assert len(results) == 4
        for job_id in ids:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
            # the resumed slots trained only the post-crash epochs here,
            # but their results report the full serial-equivalent budget
            assert results[job_id].steps_trained == STEPS
        assert_bit_identical(expected, final_params(results))
        # the WAL holds the crash event and the final completions
        events = [r for r in recovery.entries() if r["type"] == "array"]
        assert any(r["event"] == "crash" for r in events)
        assert recovery.unsettled() == {}

    def test_crashed_device_is_quarantined_then_recovers(self, tmp_path,
                                                         quiet_thread_deaths):
        store = CheckpointStore(tmp_path)
        fleet = FleetScheduler(devices=(V100, RTX6000), max_width=4,
                               store=store, checkpoint_every=1,
                               recovery=RecoveryManager(store))
        trigger = [True]
        fleet.submit_all(make_jobs(4, trigger=trigger))
        fleet.run_cycle()                     # the cycle that crashes
        crashed = fleet.quarantined_devices()
        assert len(crashed) == 1
        fleet.run_cycle()                     # recovery cycle: avoid device
        assert fleet.quarantined_devices() == []   # quarantine expired
        fleet.run_until_idle()
        assert fleet.metrics.workers_crashed == 1

    def test_crash_without_store_retrains_from_scratch(self, tmp_path,
                                                       quiet_thread_deaths):
        """Crash detection works without durability: the jobs are requeued
        from step 0 (quarantine-then-recover degrades to retrain, never to
        drop) and still finish serial-equivalent."""
        reference = FleetScheduler(devices=(V100,), max_width=4)
        reference.submit_all(make_jobs(4))
        expected = final_params(reference.run_until_idle())

        fleet = FleetScheduler(devices=(V100,), max_width=4)
        trigger = [True]
        ids = fleet.submit_all(make_jobs(4, trigger=trigger))
        results = fleet.run_until_idle()
        assert fleet.metrics.workers_crashed == 1
        assert fleet.metrics.jobs_recovered == 0
        assert all(fleet.queue.state(i) == JobState.COMPLETED for i in ids)
        assert_bit_identical(expected, final_params(results))

    def test_rebuild_fleet_from_disk_after_process_death(self, tmp_path,
                                                         quiet_thread_deaths):
        """The full restart: the first fleet object is abandoned right
        after the crash (stand-in for the process dying), and a second
        fleet is rebuilt purely from the WAL + store."""
        reference = FleetScheduler(devices=(V100,), max_width=4)
        reference.submit_all(make_jobs(4))
        expected = final_params(reference.run_until_idle())

        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        fleet = FleetScheduler(devices=(V100,), max_width=4, store=store,
                               checkpoint_every=1, recovery=recovery)
        trigger = [True]
        fleet.submit_all(make_jobs(4, trigger=trigger))
        fleet.run_cycle()
        del fleet                             # the process "dies"

        assert sorted(recovery.unsettled()) == [0, 1, 2, 3]
        registry = {job.name: job for job in make_jobs(4)}
        rebuilt = recovery.rebuild_fleet(registry, devices=(V100,),
                                         store=store, recovery=recovery,
                                         checkpoint_every=1, max_width=4)
        results = rebuilt.run_until_idle()
        assert rebuilt.metrics.jobs_recovered == 4
        assert_bit_identical(expected, final_params(results))
        # idempotence: a second restart finds nothing left to recover
        assert recovery.unsettled() == {}

    def test_rebuild_wires_a_prebuilt_fleet_to_the_store(self, tmp_path,
                                                         quiet_thread_deaths):
        """Regression: a prebuilt fleet handed to rebuild_fleet must be
        wired to the manager's store/recovery (engines included), so the
        recovered run keeps checkpointing and settling the WAL."""
        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        fleet = FleetScheduler(devices=(V100,), max_width=4, store=store,
                               checkpoint_every=1, recovery=recovery)
        trigger = [True]
        fleet.submit_all(make_jobs(4, trigger=trigger))
        fleet.run_cycle()
        del fleet

        registry = {job.name: job for job in make_jobs(4)}
        prebuilt = FleetScheduler(devices=(V100,), max_width=4)  # unwired
        rebuilt = recovery.rebuild_fleet(registry, fleet=prebuilt)
        assert rebuilt is prebuilt
        assert rebuilt.recovery is recovery and rebuilt.store is store
        results = rebuilt.run_until_idle()
        assert len(results) == 4
        assert rebuilt.metrics.jobs_recovered == 4
        # the recovered run checkpointed and settled its own completions
        assert rebuilt.metrics.checkpoints_written > 0
        assert recovery.unsettled() == {}
        # the provenance trail links each new admission to the old one
        replays = [r for r in recovery.entries() if r["type"] == "replay"]
        assert len(replays) == 4

    def test_rebuild_skips_jobs_without_builders(self, tmp_path):
        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        fleet = FleetScheduler(devices=(V100,), max_width=4, store=store,
                               recovery=recovery)
        fleet.submit_all(make_jobs(2))        # journaled, never trained
        del fleet
        registry = {"job0": make_jobs(1)[0]}  # job1's code is gone
        rebuilt = recovery.rebuild_fleet(registry, devices=(V100,),
                                         store=store, recovery=recovery)
        assert rebuilt.queue.pending_count == 1
        assert any(r["type"] == "unrecovered" and r["name"] == "job1"
                   for r in recovery.entries())


# --------------------------------------------------------------------- #
class TestGatewayReplay:
    def test_unsettled_admissions_replay_with_contract_intact(self,
                                                              tmp_path):
        """Admissions journaled before a crash are replayed on restart
        with tenant / priority / deadline intact, resume from their
        checkpoints, and bypass the rate limiter (the work was already
        paid for once)."""
        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        tenants = [TenantSpec("prod", weight=4, priority=2,
                              deadline_s=3600.0),
                   TenantSpec("free", rate=100.0, burst=8)]
        gateway = ServingGateway(tenants=tenants, devices=(V100,),
                                 max_width=4, store=store, recovery=recovery,
                                 checkpoint_every=1)
        jobs = make_jobs(3)
        tickets = [gateway.submit(jobs[0], tenant="prod"),
                   gateway.submit(jobs[1], tenant="free"),
                   gateway.submit(jobs[2], tenant="free")]
        assert all(t.admitted for t in tickets)
        prod_deadline = tickets[0].deadline
        del gateway                           # crash before any training

        # restart: tight rate limit would normally shed the free tenant's
        # second job — replay must bypass it
        gateway2 = ServingGateway(
            tenants=[TenantSpec("prod", weight=4, priority=2,
                                deadline_s=3600.0),
                     TenantSpec("free", rate=0.001, burst=1)],
            devices=(V100,), max_width=4, store=store, recovery=recovery,
            checkpoint_every=1)
        registry = {job.name: job for job in make_jobs(3)}
        replayed = gateway2.replay_unsettled(registry)

        assert len(replayed) == 3
        assert all(t.admitted for t in replayed)
        assert gateway2.metrics.admissions_replayed == 3
        by_tenant = {}
        for ticket in replayed:
            by_tenant.setdefault(ticket.tenant, []).append(ticket)
        assert len(by_tenant["prod"]) == 1 and len(by_tenant["free"]) == 2
        # the journaled *absolute* deadline survives the restart
        assert by_tenant["prod"][0].deadline == prod_deadline
        results = gateway2.run_until_idle()
        assert len(results) == 3
        assert recovery.unsettled() == {}

    def test_settled_jobs_are_not_replayed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        gateway = ServingGateway(devices=(V100,), max_width=4, store=store,
                                 recovery=recovery, checkpoint_every=1)
        gateway.submit_all(make_jobs(2))
        results = gateway.run_until_idle()
        assert len(results) == 2
        del gateway
        gateway2 = ServingGateway(devices=(V100,), max_width=4, store=store,
                                  recovery=recovery)
        assert gateway2.replay_unsettled(
            {job.name: job for job in make_jobs(2)}) == []

    def test_displaced_job_is_journaled_shed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        recovery = RecoveryManager(store)
        gateway = ServingGateway(
            tenants=[TenantSpec("low", priority=0),
                     TenantSpec("high", priority=5)],
            devices=(V100,), max_width=4, max_pending=1,
            store=store, recovery=recovery)
        jobs = make_jobs(2)
        low = gateway.submit(jobs[0], tenant="low")
        high = gateway.submit(jobs[1], tenant="high")   # displaces low
        assert low.admitted and high.admitted
        assert gateway.queue.state(low.job_id) == JobState.SHED
        # a shed admission is settled: a restart must not resurrect it
        assert low.job_id not in recovery.unsettled()
        assert high.job_id in recovery.unsettled()
