"""Greedy-vs-LP placement equivalence on a deterministic sim trace.

Both placement policies drive the *same* 16-device / 200-job multi-tenant
trace through the virtual-time backend.  The policies are free to assign
work differently — that is the point of the optimizer — but the runtime
contracts they sit under must be policy-invariant:

* **conservation** — every traced job completes exactly once under either
  policy; nothing is lost, duplicated, shed or failed;
* **result equivalence** — where the two policies happen to place a job
  on the same device, its results are bit-identical (loss curve, steps
  trained): placement moves work, it never changes what the work
  computes;
* **SLO invariance** — the priority tenant's deadline ledger shows zero
  misses under both policies (the optimizer must not trade SLOs for
  makespan);
* **determinism** — two LP runs with the same seed emit byte-identical
  scheduler decision logs, including the solve and migrate entries (the
  solver's wall latency is kept out of virtual time precisely so this
  holds).
"""

import pytest

from repro.cluster import (ServingTraceConfig, TenantLoad,
                           generate_serving_trace)
from repro.runtime import (ServingGateway, TenantSpec, TraceReplayer,
                           TrainingJob, synthetic_fleet)

from .conftest import build_sim_model, sim_data

N_DEVICES = 16
N_JOBS = 200
TRACE_SECONDS = 1800.0
MAX_WIDTH = 8


def make_trace():
    return generate_serving_trace(ServingTraceConfig(
        num_jobs=N_JOBS, duration_s=TRACE_SECONDS, seed=7,
        tenants=(TenantLoad("batch", share=5.0),
                 TenantLoad("interactive", share=3.0),
                 TenantLoad("prio", share=2.0, priority=2,
                            deadline_s=3600.0, deadline_rate=1.0)),
        mean_burst_size=8.0, max_burst_size=24,
        steps_choices=(4, 8), epoch_steps_choices=(2,)))


def job_factory(event):
    return TrainingJob(
        name=event.name, build_model=build_sim_model, data=sim_data,
        steps=event.steps, epoch_steps=event.epoch_steps, seed=event.seed,
        tenant=event.tenant, user=event.user, priority=event.priority,
        workload=event.workload)


def run_trace(placement):
    gateway = ServingGateway(
        tenants=(TenantSpec("batch", weight=1.0),
                 TenantSpec("interactive", weight=2.0),
                 TenantSpec("prio", weight=4.0, priority=2)),
        max_pending=N_JOBS + 1,
        devices=synthetic_fleet(N_DEVICES), max_width=MAX_WIDTH,
        execution="sim", placement=placement)
    gateway.metrics.enable_decision_log()
    replayer = TraceReplayer(gateway, make_trace(), job_factory,
                             cycle_quantum_s=120.0)
    results = replayer.run()
    assert not replayer.rejected
    return gateway, results


@pytest.fixture(scope="module")
def runs():
    """One greedy run and one LP run over the identical trace (module
    scoped: the sim is deterministic, so every test reads the same
    pair)."""
    return {"greedy": run_trace("greedy"), "lp": run_trace("lp")}


def test_exactly_once_conservation(runs):
    for policy, (gateway, results) in runs.items():
        assert len(results) == N_JOBS, policy
        names = [r.name for r in results.values()]
        assert len(set(names)) == N_JOBS, policy
        metrics = gateway.metrics
        assert metrics.jobs_completed == N_JOBS, policy
        assert metrics.jobs_failed == 0, policy
        assert metrics.jobs_shed == 0, policy


def test_lp_policy_actually_solved(runs):
    gateway, _ = runs["lp"]
    summary = gateway.placement_report()
    assert summary["policy"] == "lp"
    assert summary["lp_solves"] > 0
    greedy_summary = runs["greedy"][0].placement_report()
    assert greedy_summary["policy"] == "greedy"
    assert greedy_summary["lp_solves"] == 0


def _device_of(gateway, result):
    """The device that finished the job's array (via the array records)."""
    for record in gateway.metrics.records:
        if record.array_id == result.array_id:
            return record.device
    return None


def test_bit_identical_results_where_assignments_coincide(runs):
    """Same device => same bits: a job's loss curve and step count never
    depend on the policy that routed it, only on the job itself."""
    greedy_gw, greedy_results = runs["greedy"]
    lp_gw, lp_results = runs["lp"]
    by_name_greedy = {r.name: r for r in greedy_results.values()}
    coinciding = 0
    for result in lp_results.values():
        peer = by_name_greedy[result.name]
        if _device_of(lp_gw, result) != _device_of(greedy_gw, peer):
            continue
        coinciding += 1
        assert result.loss_curve == peer.loss_curve, result.name
        assert result.steps_trained == peer.steps_trained, result.name
    # the trace is bursty and the fleet heterogeneous, but the two
    # policies still agree often enough for this check to have teeth
    assert coinciding > 0


def test_zero_priority_tenant_slo_misses(runs):
    for policy, (gateway, _) in runs.items():
        summary = gateway.metrics.tenant_summary()
        prio = summary["prio"]
        assert prio["slo_misses"] == 0, policy
        assert prio["slo_hits"] == prio["submitted"], policy


def test_decision_log_deterministic_across_same_seed_runs():
    """Two identically-seeded LP runs replay the exact same scheduler
    decision sequence — dequeues, solves, placements, migrations, all of
    it, byte for byte."""
    logs = []
    for _ in range(2):
        gateway, results = run_trace("lp")
        assert len(results) == N_JOBS
        logs.append(gateway.metrics.decisions())
    assert logs[0] == logs[1]
    kinds = {kind for kind, _ in logs[0]}
    assert "solve" in kinds
