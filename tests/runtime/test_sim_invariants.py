"""Property-based invariants for the virtual-time simulation backend.

Each test replays a *randomized* arrival trace (randomized fleet size,
tenant mix, quotas, queue bound and burst shape, all derived from a
per-test ``random.Random`` seed) through a sim-mode serving gateway and
asserts properties that must hold for **every** trace, not just the
hand-picked ones:

* **conservation** — no admitted job is lost and none is served twice:
  every admitted job reaches exactly one terminal state, jobs that
  produced a result are exactly the completed/failed ones, and the
  metrics counters agree with the queue's terminal states;
* **tenant quotas** — a tenant's in-flight step total never exceeds its
  ``quota_steps`` cap *between any two scheduling cycles*, not just at
  admission time;
* **slot accounting** — every launched array's occupied slot-steps stay
  within its executed slot-steps across evictions, freed-width
  admissions and defrag merges, and the per-device busy time never
  exceeds the fleet's virtual makespan;
* **determinism** — replaying the identical trace yields the identical
  result sequence and tenant ledger (the property the real-vs-sim
  equivalence suite then extends across backends).
"""

import random

import pytest

from repro.cluster import ServingTraceConfig, TenantLoad, \
    generate_serving_trace
from repro.runtime import JobState, ServingGateway, TenantSpec, \
    VirtualClock, synthetic_fleet

from .conftest import make_sim_job

TERMINAL = (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED,
            JobState.SHED)


def job_factory(event):
    return make_sim_job(
        event.seed, steps=event.steps, epoch_steps=event.epoch_steps,
        name=event.name, tenant=event.tenant, user=event.user,
        priority=event.priority, workload=event.workload)


def random_setup(seed):
    """A randomized (trace, gateway, specs) triple derived from ``seed``."""
    rng = random.Random(987_000 + seed)
    names = ("alpha", "beta", "gamma")[:rng.choice((2, 3))]
    loads, specs = [], []
    for i, name in enumerate(names):
        deadline_rate = rng.choice((0.0, 0.5, 1.0))
        loads.append(TenantLoad(
            name, share=rng.uniform(0.5, 4.0), priority=rng.choice((0, 1)),
            deadline_s=1800.0 if deadline_rate else None,
            deadline_rate=deadline_rate))
        specs.append(TenantSpec(
            name, weight=rng.choice((1.0, 2.0)),
            priority=loads[-1].priority,
            quota_steps=rng.choice((0, 48, 96))))
    num_jobs = rng.choice((50, 80))
    trace = generate_serving_trace(ServingTraceConfig(
        num_jobs=num_jobs, duration_s=1200.0, seed=seed,
        tenants=tuple(loads),
        mean_burst_size=rng.choice((4.0, 8.0)),
        max_burst_size=16,
        steps_choices=(4, 8), epoch_steps_choices=(2,)))
    gateway = ServingGateway(
        tenants=specs, max_pending=rng.choice((24, num_jobs + 1)),
        devices=synthetic_fleet(rng.choice((3, 5, 9))),
        max_width=rng.choice((4, 8)), execution="sim",
        store=None, checkpoint_every=0)
    return trace, gateway, {spec.name: spec for spec in specs}


def replay_checking_invariants(trace, gateway, specs,
                               cycle_quantum_s=30.0):
    """TraceReplayer's loop, with invariant checks between cycles."""
    clock = gateway.clock
    assert isinstance(clock, VirtualClock)
    events = sorted(trace, key=lambda e: e.time_s)
    admitted, served, index = [], [], 0
    while True:
        while index < len(events) and events[index].time_s <= clock.now():
            event = events[index]
            index += 1
            ticket = gateway.submit(job_factory(event), tenant=event.tenant,
                                    deadline_s=event.deadline_s)
            if ticket.admitted:
                admitted.append(ticket.job_id)
        if gateway.queue.pending_count:
            before = clock.now()
            served.extend(r.job_id for r in gateway.run_cycle())
            # the virtual clock is monotonic across cycles
            assert clock.now() >= before
            # quotas hold between cycles, not just at admission time
            for name, spec in specs.items():
                if spec.quota_steps:
                    assert gateway.in_flight_steps(name) <= spec.quota_steps
            continue
        if index < len(events):
            clock.advance_to(events[index].time_s + cycle_quantum_s)
            continue
        return admitted, served


@pytest.mark.parametrize("seed", range(8))
def test_randomized_trace_invariants(seed):
    trace, gateway, specs = random_setup(seed)
    admitted, served, = replay_checking_invariants(trace, gateway, specs)
    assert admitted, "randomized trace admitted nothing"

    # -- no job double-served
    assert len(served) == len(set(served))

    # -- every admitted job reached exactly one terminal state; the jobs
    #    that produced results are exactly the completed/failed ones
    #    (displaced ones read SHED and return no result)
    states = {job_id: gateway.queue.state(job_id) for job_id in admitted}
    assert all(state in TERMINAL for state in states.values())
    with_result = {job_id for job_id, state in states.items()
                   if state in (JobState.COMPLETED, JobState.FAILED)}
    assert set(served) == with_result

    # -- the metrics ledger agrees with the queue's terminal states
    metrics = gateway.metrics
    by_state = {state: sum(1 for s in states.values() if s == state)
                for state in TERMINAL}
    assert metrics.jobs_completed == by_state[JobState.COMPLETED]
    assert metrics.jobs_failed == by_state[JobState.FAILED]
    assert metrics.jobs_failed == 0       # sim physics cannot raise
    assert len(admitted) == sum(by_state.values())

    # -- slot accounting balances across evict/admit/merge transitions
    for record in metrics.records:
        assert 0 <= record.slot_steps_occupied <= record.slot_steps_total
        assert record.fused_width_efficiency <= 1.0
        assert record.evictions >= 0 and record.admissions >= 0
        assert record.sim_seconds >= 0.0
    # busy time on the busiest device never exceeds the virtual makespan
    assert metrics.simulated_makespan <= \
        gateway.fleet.virtual_makespan() + 1e-9


@pytest.mark.parametrize("seed", (0, 3))
def test_identical_trace_replays_identically(seed):
    """Same seed, same trace, two fresh gateways: bit-identical outcome."""
    runs = []
    for _ in range(2):
        trace, gateway, specs = random_setup(seed)
        admitted, served = replay_checking_invariants(trace, gateway, specs)
        runs.append((admitted, served,
                     gateway.metrics.tenant_summary(),
                     gateway.metrics.scheduler_decisions,
                     gateway.fleet.virtual_makespan()))
    assert runs[0] == runs[1]


class TestVirtualClock:
    def test_monotonic_advance(self, virtual_clock):
        assert virtual_clock() == 0.0
        assert virtual_clock.advance(2.5) == 2.5
        assert virtual_clock.advance_to(1.0) == 2.5   # never backwards
        assert virtual_clock.advance_to(7.0) == 7.0
        assert virtual_clock.now() == 7.0

    def test_negative_advance_rejected(self, virtual_clock):
        with pytest.raises(ValueError, match="backwards"):
            virtual_clock.advance(-1.0)

    def test_replayer_requires_virtual_clock(self):
        from repro.runtime import FleetScheduler, TraceReplayer
        gateway = ServingGateway(devices=synthetic_fleet(2), max_width=4)
        with pytest.raises(TypeError, match="VirtualClock"):
            TraceReplayer(gateway, [], make_sim_job)
        # and a sim fleet auto-builds one
        fleet = FleetScheduler(devices=synthetic_fleet(2), max_width=4,
                               execution="sim")
        assert isinstance(fleet.clock, VirtualClock)
