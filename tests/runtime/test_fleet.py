"""Tests for the multi-device fleet: placement, execution, failure isolation.

Covers the fleet layer's contract:

* placement is cost-model-optimal — the device the placer picks for an
  array is the one :func:`repro.hwsim.estimate_array_cost` projects to
  finish it first;
* a cohort wider than the chosen device's memory cap falls back to partial
  fusion (``split_oversized`` chunking), not rejection;
* a failing array on one device neither stalls the other devices nor loses
  its healthy cohort-mates (quarantine-and-retry across cycles);
* fleet execution preserves the runtime invariant: every exported
  checkpoint is bit-equivalent to serial training;
* idle devices steal fitting plans from backlogged ones.
"""

import threading

import numpy as np
import pytest

from repro import nn, optim as serial_optim
from repro.hwsim import (A100, RTX6000, TPU_V3, V100, estimate_array_cost,
                         get_workload, max_models)
from repro.hfta.ops.factory import OpsLibrary
from repro.nn import functional as F
from repro.runtime import (Batcher, FleetPlacer, FleetScheduler, JobQueue,
                           JobState, PlacementDecision, TrainingJob)

STEPS = 4
BATCH = 6
CLASSES = 3
FEATURES = 10

FLEET = (V100, RTX6000, A100, TPU_V3)


class TinyMLP(nn.Module):
    """Minimal OpsLibrary model used as the tests' job architecture."""

    def __init__(self, hidden=8, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


def stream(seed, batch=BATCH):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((batch, FEATURES)).astype(np.float32),
                rng.integers(0, CLASSES, size=batch))
               for _ in range(STEPS)]
    return lambda step: batches[step]


def make_job(index, lr=1e-3, hidden=8, workload=None, **kwargs):
    config = {"lr": lr, "optimizer": kwargs.pop("optimizer", "adam")}
    return TrainingJob(
        name=f"job{index}_lr{lr}", seed=index, steps=STEPS, config=config,
        build_model=lambda B=None, g=None: TinyMLP(hidden, B, g),
        data=stream(1000 + index), workload=workload, **kwargs)


def form_cohorts(jobs):
    queue = JobQueue()
    for job in jobs:
        queue.submit(job)
    cohorts, failures = Batcher().form_cohorts(queue.pop_pending())
    assert not failures
    return cohorts


# --------------------------------------------------------------------- #
class TestCostEstimate:
    def test_estimate_matches_hfta_simulation(self):
        workload = get_workload("pointnet_cls")
        est = estimate_array_cost(
            type("Probe", (), {"num_models": 4, "steps": 8})(), V100,
            precision="amp", workload=workload)
        assert est.fits
        assert est.device == "V100"
        assert est.num_models == 4
        assert est.train_seconds == pytest.approx(8 * est.iteration_time_s)
        assert est.throughput > 0

    def test_plan_without_workload_hint_requires_explicit_workload(self):
        probe = type("Probe", (), {"num_models": 2, "steps": 1})()
        with pytest.raises(ValueError, match="workload"):
            estimate_array_cost(probe, V100)

    def test_plan_workload_hint_is_resolved_by_name(self):
        probe = type("Probe", (), {"num_models": 2, "steps": 3,
                                   "workload": "dcgan"})()
        est = estimate_array_cost(probe, A100)
        assert est.workload == "dcgan"
        assert est.steps == 3


# --------------------------------------------------------------------- #
class TestFleetPlacer:
    def test_idle_fleet_assignment_is_cost_model_optimal(self):
        """With no load, the chosen device is the one the cost model says
        trains the array fastest."""
        cohorts = form_cohorts([make_job(i, lr=1e-3 * (i + 1),
                                         workload="resnet18")
                                for i in range(3)])
        placer = FleetPlacer(devices=FLEET, max_width=4)
        (decision,) = placer.place(cohorts)

        workload = get_workload("resnet18")
        projected = {
            device.name: estimate_array_cost(
                decision.plan, device, "amp", workload=workload).train_seconds
            for device in FLEET
            if placer.width_cap(workload, device) >= decision.plan.num_models}
        assert decision.device_name == min(projected, key=projected.get)
        assert decision.projected_seconds == pytest.approx(
            projected[decision.device_name])

    def test_memory_cap_fallback_splits_via_partial_fusion(self):
        """A cohort wider than the best device's memory cap is chunked by
        split_oversized, not rejected or truncated."""
        placer = FleetPlacer(devices=(V100,), max_width=64,
                             default_workload="bert_medium")
        cap = placer.width_cap(get_workload("bert_medium"), V100)
        assert cap == max_models(get_workload("bert_medium"), V100, "hfta",
                                 "amp")
        assert 1 < cap < 12   # the scenario: memory, not max_width, binds

        cohorts = form_cohorts([make_job(i, lr=1e-3 * (i + 1),
                                         workload="bert_medium")
                                for i in range(12)])
        decisions = placer.place(cohorts)
        widths = [d.plan.num_models for d in decisions]
        assert sum(widths) == 12
        assert max(widths) == cap                 # full chunks at capacity
        assert all(d.plan.width_cap == cap for d in decisions)
        # every job placed exactly once
        placed = sorted(i for d in decisions for i in d.plan.indices)
        assert placed == list(range(12))

    def test_load_awareness_spreads_chunks_across_devices(self):
        """Many same-cost arrays do not pile onto one device."""
        jobs = [make_job(i, hidden=8 + 2 * i, workload="pointnet_cls")
                for i in range(8)]          # 8 structurally distinct cohorts
        placer = FleetPlacer(devices=FLEET, max_width=4)
        decisions = placer.place(form_cohorts(jobs))
        assert len({d.device_name for d in decisions}) > 1

    def test_capacity_asymmetry_does_not_defuse_the_cohort(self):
        """Regression: ranking devices by a single chunk's finish time let a
        low-capacity device (narrow chunk = less work = finishes sooner)
        beat the device that can fuse the whole cohort at once.  Devices
        must be compared on the full remaining chunk set."""
        workload = get_workload("pointnet_seg")
        placer = FleetPlacer(devices=(V100, A100), max_width=16,
                             default_workload="pointnet_seg")
        cap_v100 = placer.width_cap(workload, V100)
        cap_a100 = placer.width_cap(workload, A100)
        assert cap_v100 < 16 <= cap_a100   # the asymmetric scenario

        cohorts = form_cohorts([make_job(i, lr=1e-3 * (i + 1),
                                         workload="pointnet_seg")
                                for i in range(16)])
        decisions = placer.place(cohorts)

        # The cost model projects A100 trains all 16 fused faster than
        # V100 trains 7+7+2; the placer must therefore fuse on A100.
        a100_whole = estimate_array_cost(
            decisions[0].plan, A100, "amp", workload=workload)
        v100_widths = [cap_v100] * (16 // cap_v100)
        if 16 % cap_v100:
            v100_widths.append(16 % cap_v100)
        v100_chunks = sum(
            estimate_array_cost(
                type("P", (), {"num_models": w, "steps": STEPS})(),
                V100, "amp", workload=workload).train_seconds
            for w in v100_widths)
        assert a100_whole.train_seconds < v100_chunks  # scenario premise
        assert [d.device_name for d in decisions] == ["A100"]
        assert decisions[0].plan.num_models == 16

    def test_unplaceable_workload_raises(self):
        placer = FleetPlacer(devices=(TPU_V3,), max_width=4,
                             default_workload="bert_medium")
        workload = get_workload("bert_medium")
        if placer.width_cap(workload, TPU_V3) >= 1:
            pytest.skip("bert_medium fits a TPUv3 core in this calibration")
        with pytest.raises(RuntimeError, match="cannot fit"):
            placer.place(form_cohorts([make_job(0,
                                                workload="bert_medium")]))


# --------------------------------------------------------------------- #
class TestFleetScheduler:
    def test_serves_jobs_equivalently_to_serial_training(self):
        """Fleet execution changes where jobs train, never what they learn."""
        jobs = [make_job(i, lr=1e-3 * (i + 1)) for i in range(5)]
        fleet = FleetScheduler(devices=(V100, A100), max_width=2)
        job_ids = fleet.submit_all(jobs)
        results = fleet.run_until_idle()

        assert len(results) == 5
        assert fleet.metrics.jobs_completed == 5
        for job, job_id in zip(jobs, job_ids):
            result = results[job_id]
            reference = job.build_model(None, np.random.default_rng(job.seed))
            opt = serial_optim.Adam(reference.parameters(),
                                    lr=job.config["lr"])
            for step in range(STEPS):
                x, y = job.data(step)
                opt.zero_grad()
                loss = F.cross_entropy(reference(nn.tensor(x)), y)
                loss.backward()
                opt.step()
            for (name, p_ref), (_, p_out) in zip(
                    reference.named_parameters(),
                    result.checkpoint.named_parameters()):
                np.testing.assert_allclose(p_out.data, p_ref.data,
                                           rtol=1e-4, atol=1e-6,
                                           err_msg=f"{result.name} {name}")

    def test_array_ids_unique_across_concurrent_devices(self):
        fleet = FleetScheduler(devices=FLEET, max_width=2)
        fleet.submit_all([make_job(i, hidden=8 + 2 * (i % 4))
                          for i in range(8)])
        fleet.run_until_idle()
        ids = [r.array_id for r in fleet.metrics.records]
        assert len(ids) == len(set(ids))
        # every record is stamped with a real fleet device
        names = {d.name for d in FLEET}
        assert all(r.device in names for r in fleet.metrics.records)

    def test_failing_array_on_one_device_does_not_stall_the_others(self):
        """A poisoned cohort fails its shared array; the other devices'
        arrays complete, and the quarantined jobs retry solo."""
        fleet = FleetScheduler(devices=(V100, RTX6000), max_width=4)
        healthy = [fleet.submit(make_job(i, hidden=16)) for i in range(3)]
        good_mate = fleet.submit(make_job(10))
        bad_mate = fleet.submit(TrainingJob(
            name="job11_lr0.001", seed=11, steps=STEPS,
            config={"lr": 1e-3, "optimizer": "adam"},
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=stream(1011, batch=BATCH + 3)))   # mismatched batch size

        results = fleet.run_until_idle()
        for job_id in healthy + [good_mate, bad_mate]:
            assert fleet.queue.state(job_id) == JobState.COMPLETED
            assert job_id in results
        assert fleet.metrics.arrays_failed == 1
        # the quarantine retries trained as width-1 arrays
        retry_widths = sorted(r.num_models for r in fleet.metrics.records
                              if r.num_models == 1)
        assert len(retry_widths) >= 2

    def test_idle_device_steals_from_backlogged_device(self):
        """All plans pinned to one device: the other must steal work.

        Deflaked: instead of assuming the thief wins the race for the
        backlog, the pinned device's *first* array blocks at its first
        batch until the stolen array (the tail plan — stealing takes the
        newest fitting item) reaches its own first batch, so the steal
        provably happened while the victim was still busy.  A broken
        stealing path leaves the barrier to time out and the
        ``plans_stolen`` assertion to fail with a clear message — the
        test degrades to a failure, never a hang.
        """
        class PinningPlacer(FleetPlacer):
            def place(self, cohorts, load=None):
                pinned = []
                for decision in super().place(cohorts, load):
                    estimate = self.estimate(decision.plan, self.devices[0])
                    decision.plan.device = self.devices[0].name
                    decision.plan.projected_seconds = estimate.train_seconds
                    pinned.append(PlacementDecision(
                        plan=decision.plan, device=self.devices[0],
                        estimate=estimate))
                return pinned

        barrier = threading.Barrier(2, timeout=10.0)

        def synced_stream(seed):
            inner = stream(seed)

            def data(step):
                if step == 0:
                    try:
                        barrier.wait()
                    except threading.BrokenBarrierError:
                        pass
                return inner(step)
            return data

        jobs = [make_job(i, hidden=8 + 2 * i) for i in range(8)]
        # job 0 heads the victim's queue; job 7 is the tail plan a thief
        # steals first — sync their first batches
        for i in (0, 7):
            jobs[i] = TrainingJob(
                name=jobs[i].name, seed=i, steps=STEPS,
                config=dict(jobs[i].config),
                build_model=jobs[i].build_model,
                data=synced_stream(1000 + i))
        fleet = FleetScheduler(
            devices=(V100, RTX6000),
            placer=PinningPlacer(devices=(V100, RTX6000), max_width=2))
        fleet.submit_all(jobs)
        results = fleet.run_until_idle()

        assert len(results) == 8
        assert fleet.metrics.plans_stolen > 0
        assert "RTX6000" in {r.device for r in fleet.metrics.records}

    def test_work_stealing_can_be_disabled(self):
        class PinningPlacer(FleetPlacer):
            def place(self, cohorts, load=None):
                pinned = []
                for decision in super().place(cohorts, load):
                    estimate = self.estimate(decision.plan, self.devices[0])
                    decision.plan.device = self.devices[0].name
                    pinned.append(PlacementDecision(
                        plan=decision.plan, device=self.devices[0],
                        estimate=estimate))
                return pinned

        fleet = FleetScheduler(
            devices=(V100, RTX6000), work_stealing=False,
            placer=PinningPlacer(devices=(V100, RTX6000), max_width=2))
        fleet.submit_all([make_job(i, hidden=8 + 2 * i) for i in range(4)])
        results = fleet.run_until_idle()
        assert len(results) == 4
        assert fleet.metrics.plans_stolen == 0
        assert {r.device for r in fleet.metrics.records} == {"V100"}

    def test_fleet_metrics_report_per_device(self):
        fleet = FleetScheduler(devices=(V100, A100), max_width=2)
        fleet.submit_all([make_job(i, hidden=8 + 2 * (i % 3))
                          for i in range(6)])
        fleet.run_until_idle()

        summary = fleet.metrics.device_summary()
        assert set(summary) == set(fleet.metrics.devices)
        total_jobs = sum(s["jobs"] for s in summary.values())
        assert total_jobs == 6
        assert fleet.metrics.wall_seconds > 0
        assert fleet.metrics.aggregate_throughput > 0
        for s in summary.values():
            assert 0.0 <= s["utilization"] <= 1.0 + 1e-6
            assert s["busy_seconds"] <= fleet.metrics.wall_seconds + 1e-6

        rows, header = fleet.metrics.fleet_report()
        assert len(rows) == len(summary)
        assert all(len(row) == len(header) for row in rows)
        as_dict = fleet.metrics.as_dict()
        assert as_dict["wall_seconds"] == fleet.metrics.wall_seconds
        assert (as_dict["aggregate_throughput_samples_per_s"]
                == fleet.metrics.aggregate_throughput)

    def test_workload_hints_keep_cost_models_per_array(self):
        """Jobs with different workload hints never share an array, so each
        array has exactly one cost model."""
        jobs = [make_job(0, workload="pointnet_cls"),
                make_job(1, workload="dcgan")]    # same structure, diff hint
        cohorts = form_cohorts(jobs)
        assert len(cohorts) == 2
        assert sorted(c.workload for c in cohorts) == ["dcgan",
                                                       "pointnet_cls"]
