"""Unit and integration tests for the dynamic training-array runtime."""

import numpy as np
import pytest

from repro import nn, optim as serial_optim
from repro.hfta.ops.factory import OpsLibrary
from repro.hfht.space import HyperParameter, SearchSpace
from repro.hwsim import V100, get_workload
from repro.nn import functional as F
from repro.runtime import (ArrayPolicy, Batcher, JobQueue, JobState,
                           RuntimeMetrics, TrainingArrayEngine, TrainingJob)
from repro.runtime.metrics import ArrayRecord

STEPS = 4
BATCH = 6
CLASSES = 3
FEATURES = 10


class TinyMLP(nn.Module):
    """Minimal OpsLibrary model used as the tests' job architecture."""

    def __init__(self, hidden=8, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


def stream(seed, batch=BATCH):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((batch, FEATURES)).astype(np.float32),
                rng.integers(0, CLASSES, size=batch))
               for _ in range(STEPS)]
    return lambda step: batches[step]


def make_job(index, lr=1e-3, hidden=8, steps=STEPS, **kwargs):
    config = {"lr": lr, "optimizer": kwargs.pop("optimizer", "adam")}
    config.update(kwargs.pop("config", {}))
    return TrainingJob(
        name=f"job{index}_lr{lr}", seed=index, steps=steps, config=config,
        build_model=lambda B=None, g=None: TinyMLP(hidden, B, g),
        data=stream(1000 + index), **kwargs)


# --------------------------------------------------------------------- #
class TestJobQueue:
    def test_lifecycle(self):
        queue = JobQueue()
        job_id = queue.submit(make_job(0))
        assert queue.state(job_id) == JobState.QUEUED
        assert queue.pending_count == 1

        (sub,) = queue.pop_pending()
        assert sub.job_id == job_id
        assert sub.state == JobState.SCHEDULED
        assert queue.pending_count == 0

        queue.mark_running(sub)
        queue.mark_completed(sub, result="checkpoint")
        assert queue.state(job_id) == JobState.COMPLETED
        assert queue.result(job_id) == "checkpoint"

    def test_pop_pending_respects_max_jobs_and_order(self):
        queue = JobQueue()
        ids = [queue.submit(make_job(i)) for i in range(5)]
        first = queue.pop_pending(max_jobs=2)
        assert [s.job_id for s in first] == ids[:2]
        rest = queue.pop_pending()
        assert [s.job_id for s in rest] == ids[2:]

    def test_requeue_puts_job_back_at_front(self):
        queue = JobQueue()
        ids = [queue.submit(make_job(i)) for i in range(2)]
        (sub,) = queue.pop_pending(max_jobs=1)
        queue.requeue(sub)
        assert [s.job_id for s in queue.pop_pending()] == ids

    def test_full_queue_rejects_submissions(self):
        queue = JobQueue(max_pending=1)
        queue.submit(make_job(0))
        with pytest.raises(RuntimeError, match="full"):
            queue.submit(make_job(1))

    def test_result_of_failed_job_raises(self):
        queue = JobQueue()
        job_id = queue.submit(make_job(0))
        (sub,) = queue.pop_pending()
        queue.mark_failed(sub, "boom")
        with pytest.raises(RuntimeError, match="boom"):
            queue.result(job_id)

    def test_job_without_data_is_rejected(self):
        with pytest.raises(ValueError, match="data stream"):
            TrainingJob(name="nodata", build_model=lambda B, g: TinyMLP(8),
                        data=None)


# --------------------------------------------------------------------- #
class TestBatcher:
    def _schedule(self, jobs):
        queue = JobQueue()
        for job in jobs:
            queue.submit(job)
        return queue.pop_pending()

    def test_same_architecture_same_config_fuse(self):
        batch = self._schedule([make_job(i, lr=1e-3 * (i + 1))
                                for i in range(4)])
        cohorts, failures = Batcher().form_cohorts(batch)
        assert not failures
        assert len(cohorts) == 1
        assert cohorts[0].num_models == 4
        assert len(cohorts[0].templates) == 4

    def test_different_architectures_split(self):
        batch = self._schedule([make_job(0, hidden=8), make_job(1, hidden=8),
                                make_job(2, hidden=16)])
        cohorts, _ = Batcher().form_cohorts(batch)
        assert sorted(c.num_models for c in cohorts) == [1, 2]

    def test_infusible_config_keys_split(self):
        batch = self._schedule([make_job(0), make_job(1, optimizer="sgd")])
        cohorts, _ = Batcher().form_cohorts(batch)
        assert len(cohorts) == 2

    def test_step_budgets_split(self):
        batch = self._schedule([make_job(0, steps=2), make_job(1, steps=3)])
        cohorts, _ = Batcher().form_cohorts(batch)
        assert len(cohorts) == 2

    def test_search_space_cannot_make_default_infusible_keys_fusible(self):
        """Regression: a space declaring only its own infusible names used
        to *replace* the default infusible key set, silently fusing jobs
        with different optimizers — and training both with the first
        job's optimizer.  The space's names must union with the defaults."""
        space = SearchSpace([HyperParameter("lr", True, 1e-4, 1e-2)])
        jobs = [make_job(0, space=space),
                make_job(1, optimizer="sgd", space=space)]
        cohorts, _ = Batcher().form_cohorts(self._schedule(jobs))
        assert len(cohorts) == 2   # optimizer stays infusible

    def test_search_space_declares_infusible_keys(self):
        space = SearchSpace([
            HyperParameter("lr", True, 1e-4, 1e-2),
            HyperParameter("width_mult", False, choices=(1, 2)),
        ])
        jobs = [make_job(0, config={"width_mult": 1}, space=space),
                make_job(1, config={"width_mult": 2}, space=space),
                make_job(2, config={"width_mult": 1}, space=space)]
        cohorts, _ = Batcher().form_cohorts(self._schedule(jobs))
        assert sorted(c.num_models for c in cohorts) == [1, 2]

    def test_broken_builder_reported_not_raised(self):
        def broken(B=None, g=None):
            raise RuntimeError("bad model")

        bad = TrainingJob(name="bad", build_model=broken, data=stream(0))
        batch = self._schedule([make_job(0), bad, make_job(1)])
        cohorts, failures = Batcher().form_cohorts(batch)
        assert len(failures) == 1
        assert "bad model" in failures[0][1]
        assert sum(c.num_models for c in cohorts) == 2


# --------------------------------------------------------------------- #
class TestArrayPolicy:
    def _cohort(self, num_jobs):
        batch = []
        queue = JobQueue()
        for i in range(num_jobs):
            queue.submit(make_job(i))
        (cohort,), _ = Batcher().form_cohorts(queue.pop_pending())
        return cohort

    def test_width_cap_splits_oversized_cohorts(self):
        plans = ArrayPolicy(max_width=3).plan([self._cohort(7)])
        assert [p.num_models for p in plans] == [3, 3, 1]
        assert all(p.width_cap == 3 for p in plans)
        assert plans[0].occupancy == 1.0
        assert plans[-1].occupancy == pytest.approx(1 / 3)

    def test_memory_bound_cap_uses_hwsim(self):
        workload = get_workload("pointnet_cls")
        policy = ArrayPolicy(max_width=1000, workload=workload, device=V100)
        from repro.hwsim import max_models
        assert policy.width_cap() == max_models(workload, V100, "hfta", "amp")

    def test_explicit_cap_wins_when_smaller(self):
        policy = ArrayPolicy(max_width=2,
                             workload=get_workload("pointnet_cls"),
                             device=V100)
        assert policy.width_cap() == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="max_width"):
            ArrayPolicy(max_width=0)
        with pytest.raises(ValueError, match="together"):
            ArrayPolicy(workload=get_workload("pointnet_cls"))


# --------------------------------------------------------------------- #
class TestEngine:
    def test_serves_jobs_equivalently_to_serial_training(self):
        jobs = [make_job(i, lr=1e-3 * (i + 1)) for i in range(5)]
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=2))
        job_ids = engine.submit_all(jobs)
        results = engine.run_until_idle()

        assert len(results) == 5
        assert engine.metrics.arrays_launched == 3  # 2 + 2 + 1 under cap 2
        assert engine.metrics.jobs_completed == 5

        for job, job_id in zip(jobs, job_ids):
            result = results[job_id]
            assert len(result.loss_curve) == STEPS
            reference = job.build_model(None, np.random.default_rng(job.seed))
            opt = serial_optim.Adam(reference.parameters(),
                                    lr=job.config["lr"])
            for step in range(STEPS):
                x, y = job.data(step)
                opt.zero_grad()
                loss = F.cross_entropy(reference(nn.tensor(x)), y)
                loss.backward()
                opt.step()
            for (name, p_ref), (_, p_out) in zip(
                    reference.named_parameters(),
                    result.checkpoint.named_parameters()):
                np.testing.assert_allclose(p_out.data, p_ref.data,
                                           rtol=1e-4, atol=1e-6,
                                           err_msg=f"{result.name} {name}")

    def test_heterogeneous_jobs_form_separate_arrays(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        engine.submit_all([make_job(0), make_job(1),
                           make_job(2, hidden=16), make_job(3, hidden=16)])
        engine.run_until_idle()
        assert engine.metrics.arrays_launched == 2
        assert engine.metrics.models_per_array == 2.0

    def test_cohort_mate_omitting_a_fusible_key_gets_the_default(self):
        """Fusible keys are not part of the cohort key, so a job that omits
        'lr' may fuse with one that sets it; the omitting job must train
        with the optimizer's own default, not fail the array."""
        explicit = make_job(0, lr=5e-3)
        implicit = TrainingJob(
            name="job1_lr0", seed=1, steps=STEPS,  # same name signature
            config={"optimizer": "adam"},
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=stream(1001))
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all([explicit, implicit])
        results = engine.run_until_idle()
        assert set(results) == set(ids)
        assert engine.metrics.arrays_launched == 1   # they fused
        assert engine.metrics.arrays_failed == 0

        reference = implicit.build_model(None,
                                         np.random.default_rng(implicit.seed))
        opt = serial_optim.Adam(reference.parameters())  # default lr
        for step in range(STEPS):
            x, y = implicit.data(step)
            opt.zero_grad()
            loss = F.cross_entropy(reference(nn.tensor(x)), y)
            loss.backward()
            opt.step()
        for (name, p_ref), (_, p_out) in zip(
                reference.named_parameters(),
                results[ids[1]].checkpoint.named_parameters()):
            np.testing.assert_allclose(p_out.data, p_ref.data,
                                       rtol=1e-4, atol=1e-6, err_msg=name)

    def test_sgd_and_adadelta_jobs_train(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        ids = engine.submit_all([
            make_job(0, optimizer="sgd", lr=0.05),
            make_job(1, optimizer="adadelta", lr=0.5),
        ])
        results = engine.run_until_idle()
        assert set(results) == set(ids)
        assert engine.metrics.arrays_launched == 2  # infusible optimizers

    def test_unknown_optimizer_fails_only_its_array(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        good = engine.submit(make_job(0))
        bad = engine.submit(make_job(1, optimizer="lion"))
        results = engine.run_until_idle()
        assert good in results and bad not in results
        assert engine.queue.state(bad) == JobState.FAILED
        assert engine.metrics.jobs_failed == 1
        with pytest.raises(RuntimeError, match="lion"):
            engine.queue.result(bad)

    def test_broken_data_stream_fails_only_its_array(self):
        def bad_stream(step):
            raise IOError("dataset offline")

        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        good = engine.submit(make_job(0))
        bad = engine.submit(TrainingJob(
            name="baddata", seed=9,
            config={"lr": 1e-3, "optimizer": "sgd"},  # infusible: own array
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=bad_stream, steps=STEPS))
        results = engine.run_until_idle()
        assert good in results
        assert engine.queue.state(bad) == JobState.FAILED

    def test_bad_cohort_mate_quarantined_not_fatal_to_others(self):
        """A job whose data stream mismatches its cohort (same config, so
        the batcher fuses them) fails the shared array; the engine must
        retry the jobs solo so the healthy one still completes."""
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        good = engine.submit(make_job(0))
        bad = engine.submit(TrainingJob(
            name="job1_lr0.001", seed=1, steps=STEPS,
            config={"lr": 1e-3, "optimizer": "adam"},
            build_model=lambda B=None, g=None: TinyMLP(8, B, g),
            data=stream(1001, batch=BATCH + 3)))  # mismatched batch size
        results = engine.run_until_idle()
        assert good in results
        assert bad in results  # trains fine alone
        assert engine.queue.state(good) == JobState.COMPLETED
        assert engine.queue.state(bad) == JobState.COMPLETED
        assert engine.metrics.arrays_failed == 1
        # the retry trained each job in its own width-1 array
        assert [r.num_models for r in engine.metrics.records] == [1, 1]

    def test_incremental_cycles_serve_a_live_stream(self):
        engine = TrainingArrayEngine(policy=ArrayPolicy(max_width=4))
        first = engine.submit(make_job(0))
        engine.run_cycle()
        assert engine.queue.state(first) == JobState.COMPLETED
        second = engine.submit(make_job(1))
        third = engine.submit(make_job(2))
        engine.run_cycle()
        assert engine.queue.state(second) == JobState.COMPLETED
        assert engine.queue.state(third) == JobState.COMPLETED
        assert engine.metrics.arrays_launched == 2
        assert engine.metrics.records[1].num_models == 2


# --------------------------------------------------------------------- #
class TestRuntimeMetrics:
    def test_aggregates(self):
        metrics = RuntimeMetrics()
        metrics.record_submit(5)
        metrics.record_array(ArrayRecord(
            array_id=0, signature="a", num_models=4, width_cap=4,
            steps=10, samples=400, seconds=2.0))
        metrics.record_array(ArrayRecord(
            array_id=1, signature="a", num_models=1, width_cap=4,
            steps=10, samples=100, seconds=1.0))
        metrics.record_failure()

        assert metrics.jobs_submitted == 5
        assert metrics.jobs_completed == 5
        assert metrics.jobs_failed == 1
        assert metrics.arrays_launched == 2
        assert metrics.models_per_array == 2.5
        assert metrics.occupancy == pytest.approx((1.0 + 0.25) / 2)
        assert metrics.serial_steps_saved == 30
        assert metrics.throughput == pytest.approx(500 / 3.0)

        rows, header = metrics.report()
        assert len(rows) == 2
        assert len(rows[0]) == len(header)
        as_dict = metrics.as_dict()
        assert as_dict["arrays_launched"] == 2
        assert as_dict["throughput_samples_per_s"] == metrics.throughput

    def test_empty_metrics_are_well_defined(self):
        metrics = RuntimeMetrics()
        assert metrics.throughput == 0.0
        assert metrics.occupancy == 0.0
        assert metrics.models_per_array == 0.0
