"""Tests for the multi-tenant serving gateway: admission, fairness, SLOs.

Burst behavior under contract:

* token-bucket rate limiting sheds over-rate submissions and admits again
  exactly when the bucket refills (manual clock — no timing assumptions);
* per-tenant quotas bound in-flight work and free as the backlog drains;
* under backpressure (bounded queue) the lowest-priority queued job is
  shed first, and only for a strictly higher-priority newcomer;
* the fair dequeue serves deadline-at-risk jobs first, then priority
  classes, then tenants by weighted-fair virtual time;
* preemption detaches an over-quota tenant's slot so a deadline-at-risk
  job can board, and the preempted job resumes serially-equivalent.
"""

import numpy as np
import pytest

from repro import nn, optim as serial_optim
from repro.hfta.ops.factory import OpsLibrary
from repro.hwsim import V100
from repro.nn import functional as F
from repro.runtime import (Batcher, JobQueue, JobState, ServingGateway,
                           ShedReason, TenantSpec, TrainingJob)

STEPS = 4
BATCH = 6
CLASSES = 3
FEATURES = 10


class TinyMLP(nn.Module):
    """Minimal OpsLibrary model used as the tests' job architecture."""

    def __init__(self, hidden=8, num_models=None, generator=None):
        super().__init__()
        lib = self.lib = OpsLibrary(num_models)
        self.fc1 = lib.Linear(FEATURES, hidden, generator=generator)
        self.fc2 = lib.Linear(hidden, CLASSES, generator=generator)
        self.relu = lib.ReLU()

    def fuse_inputs(self, features):
        return self.lib.fuse_dense_inputs(features)

    def forward(self, x):
        return self.fc2(self.relu(self.fc1(x)))


def stream(seed, steps=STEPS):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((BATCH, FEATURES)).astype(np.float32),
                rng.integers(0, CLASSES, size=BATCH))
               for _ in range(steps)]
    return lambda step: batches[step]


def make_job(index, tenant="default", lr=1e-3, steps=STEPS, **kwargs):
    return TrainingJob(
        name=f"job{index}_lr{lr}", seed=index, steps=steps,
        config={"lr": lr, "optimizer": "adam"},
        build_model=lambda B=None, g=None: TinyMLP(8, B, g),
        data=stream(1000 + index, steps), tenant=tenant, **kwargs)


def manual_clock(start=0.0):
    now = [start]

    def advance(dt):
        now[0] += dt
    return (lambda: now[0]), advance


def assert_checkpoint_matches(result, job):
    reference = job.build_model(None, np.random.default_rng(job.seed))
    opt = serial_optim.Adam(reference.parameters(), lr=job.config["lr"])
    for step in range(result.steps_trained):
        x, y = job.data(step)
        opt.zero_grad()
        F.cross_entropy(reference(nn.tensor(x)), y).backward()
        opt.step()
    for (name, p_ref), (_, p_out) in zip(
            reference.named_parameters(),
            result.checkpoint.named_parameters()):
        np.testing.assert_allclose(p_out.data, p_ref.data, rtol=1e-4,
                                   atol=1e-6,
                                   err_msg=f"{result.name} {name}")


# --------------------------------------------------------------------- #
class TestRateLimit:
    def test_burst_then_shed_then_refill(self):
        clock, advance = manual_clock()
        gateway = ServingGateway(
            tenants=[TenantSpec("t", rate=1.0, burst=2)],
            devices=(V100,), max_width=4, clock=clock)

        first = gateway.submit(make_job(0, "t"))
        second = gateway.submit(make_job(1, "t"))
        assert first.admitted and second.admitted

        third = gateway.submit(make_job(2, "t"))
        assert not third.admitted
        assert third.reason == ShedReason.RATE_LIMITED
        assert third.retry_after == pytest.approx(1.0)
        assert third.job_id is None

        # the bucket refills exactly one token per second
        advance(1.0)
        fourth = gateway.submit(make_job(3, "t"))
        assert fourth.admitted
        fifth = gateway.submit(make_job(4, "t"))
        assert not fifth.admitted

        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["submitted"] == 5
        assert summary["t"]["admitted"] == 3
        assert summary["t"]["shed"] == 2

    def test_rate_limited_jobs_never_reach_the_queue(self):
        clock, _ = manual_clock()
        gateway = ServingGateway(
            tenants=[TenantSpec("t", rate=0.5, burst=1)],
            devices=(V100,), max_width=4, clock=clock)
        gateway.submit(make_job(0, "t"))
        gateway.submit(make_job(1, "t"))
        assert gateway.queue.pending_count == 1


class TestQuota:
    def test_quota_caps_in_flight_steps_and_frees_on_completion(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("t", quota_steps=2 * STEPS)],
            devices=(V100,), max_width=4)
        assert gateway.submit(make_job(0, "t")).admitted
        assert gateway.submit(make_job(1, "t")).admitted
        over = gateway.submit(make_job(2, "t"))
        assert not over.admitted
        assert over.reason == ShedReason.OVER_QUOTA
        assert over.retry_after > 0

        gateway.run_until_idle()          # the backlog drains
        assert gateway.in_flight_steps("t") == 0
        assert gateway.submit(make_job(3, "t")).admitted


class TestBackpressure:
    def test_full_queue_sheds_lowest_priority_tenant_first(self):
        """Quota exhaustion on the shared queue displaces the cheapest
        queued work: the newest lowest-priority job is shed (freeing its
        width claim), never the high-priority backlog."""
        gateway = ServingGateway(
            tenants=[TenantSpec("low", priority=0),
                     TenantSpec("mid", priority=1),
                     TenantSpec("high", priority=2)],
            devices=(V100,), max_width=4, max_pending=3)
        low_ids = [gateway.submit(make_job(i, "low")).job_id
                   for i in range(2)]
        mid = gateway.submit(make_job(2, "mid"))
        assert gateway.queue.pending_count == 3

        ticket = gateway.submit(make_job(3, "high"))
        assert ticket.admitted
        # the newest *low* job was displaced — not the mid one
        assert gateway.queue.state(low_ids[1]) == JobState.SHED
        assert gateway.queue.state(low_ids[0]) == JobState.QUEUED
        assert gateway.queue.state(mid.job_id) == JobState.QUEUED
        summary = gateway.metrics.tenant_summary()
        assert summary["low"]["shed"] == 1
        assert gateway.metrics.jobs_shed == 1

    def test_slo_carrying_queued_jobs_are_never_displaced(self):
        """Regression: displacement must not silently drop an admitted
        SLO job — its deadline has to be scored hit or miss.  With only
        SLO work queued, the hot newcomer is shed instead."""
        gateway = ServingGateway(
            tenants=[TenantSpec("slo", priority=0, deadline_s=600.0),
                     TenantSpec("hot", priority=5)],
            devices=(V100,), max_width=4, max_pending=1)
        protected = gateway.submit(make_job(0, "slo"))
        ticket = gateway.submit(make_job(1, "hot"))
        assert not ticket.admitted
        assert ticket.reason == ShedReason.BACKPRESSURE
        assert gateway.queue.state(protected.job_id) == JobState.QUEUED
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["slo"]["slo_hits"] == 1

    def test_legacy_placer_signature_works_behind_the_gateway(self):
        """Regression: a custom placer with the pre-gateway
        place(cohorts, load=None) signature must keep working when an
        admission policy is installed (it just skips slack ordering)."""
        from repro.runtime import FleetPlacer, FleetScheduler

        class LegacyPlacer(FleetPlacer):
            def place(self, cohorts, load=None):
                return super().place(cohorts, load)

        fleet = FleetScheduler(
            devices=(V100,), placer=LegacyPlacer(devices=(V100,),
                                                 max_width=4))
        gateway = ServingGateway(tenants=[TenantSpec("t")], fleet=fleet)
        ids = [gateway.submit(make_job(i, "t")).job_id for i in range(3)]
        results = gateway.run_until_idle()
        assert set(results) == set(ids)

    def test_equal_priority_newcomer_is_shed_not_the_queue(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("a", priority=1), TenantSpec("b",
                                                             priority=1)],
            devices=(V100,), max_width=4, max_pending=2)
        ids = [gateway.submit(make_job(i, "a")).job_id for i in range(2)]
        ticket = gateway.submit(make_job(2, "b"))
        assert not ticket.admitted
        assert ticket.reason == ShedReason.BACKPRESSURE
        assert ticket.retry_after > 0
        assert all(gateway.queue.state(i) == JobState.QUEUED for i in ids)

    def test_displacing_a_non_gateway_job_keeps_the_ledger_sane(self):
        """Regression: a job that entered the queue via fleet.submit
        (never counted admitted) being displaced must not drive the
        tenant's admitted counter negative."""
        gateway = ServingGateway(tenants=[TenantSpec("hi", priority=2)],
                                 devices=(V100,), max_width=4,
                                 max_pending=1)
        legacy = make_job(0, tenant="legacy")
        gateway.fleet.submit(legacy)           # bypasses the gateway
        ticket = gateway.submit(make_job(1, "hi"))
        assert ticket.admitted
        summary = gateway.metrics.tenant_summary()
        assert summary["legacy"]["shed"] == 1
        assert summary["legacy"]["admitted"] == 0

    def test_explicit_priority_zero_is_not_promoted(self):
        """Regression: priority 0 is a legitimate class, not an 'unset'
        sentinel — a deliberately deprioritized job under a hot tenant
        must stay at class 0."""
        gateway = ServingGateway(tenants=[TenantSpec("hot", priority=5)],
                                 devices=(V100,), max_width=4)
        inherited = gateway.submit(make_job(0, "hot"))
        demoted = gateway.submit(make_job(1, "hot", priority=0))
        assert gateway.queue.get(inherited.job_id).job.priority == 5
        assert gateway.queue.get(demoted.job_id).job.priority == 0

    def test_shed_only_removes_queued_jobs(self):
        queue = JobQueue()
        job_id = queue.submit(make_job(0))
        (sub,) = queue.pop_pending()
        assert not queue.shed(job_id)          # already scheduled
        assert sub.state == JobState.SCHEDULED
        assert not queue.shed(12345)           # unknown id


class TestFairDequeue:
    def test_weighted_fair_order_tracks_tenant_weights(self):
        """Tenant A (weight 3) is dequeued ~3x as often as B (weight 1)
        while both have backlog — start-time fair queueing on steps."""
        gateway = ServingGateway(
            tenants=[TenantSpec("a", weight=3.0),
                     TenantSpec("b", weight=1.0)],
            devices=(V100,), max_width=2)
        a_ids = [gateway.submit(make_job(i, "a")).job_id for i in range(6)]
        b_ids = [gateway.submit(make_job(10 + i, "b")).job_id
                 for i in range(6)]

        order = [sub.job_id
                 for sub in gateway.queue.pop_fair(key=gateway.rank)]
        assert set(order) == set(a_ids) | set(b_ids)
        # the first dequeues all belong to the heavy tenant, and within
        # the first six it holds at least its 3:1 share
        assert order[0] in a_ids and order[1] in a_ids
        assert sum(1 for i in order[:6] if i in a_ids) >= 4

    def test_priority_classes_outrank_weights(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("vip", weight=0.1, priority=1),
                     TenantSpec("bulk", weight=10.0, priority=0)],
            devices=(V100,), max_width=2)
        bulk = [gateway.submit(make_job(i, "bulk")).job_id
                for i in range(3)]
        vip = [gateway.submit(make_job(10 + i, "vip")).job_id
               for i in range(3)]
        order = [sub.job_id
                 for sub in gateway.queue.pop_fair(key=gateway.rank)]
        assert order[:3] == vip
        assert set(order[3:]) == set(bulk)

    def test_deadline_at_risk_job_jumps_the_fair_queue(self):
        """A best-effort backlog is queued ahead of it, but the job whose
        deadline the cost model says is already blown dequeues first."""
        gateway = ServingGateway(
            tenants=[TenantSpec("bulk", weight=10.0, priority=1),
                     TenantSpec("slo", weight=1.0, priority=0)],
            devices=(V100,), max_width=2)
        for i in range(5):
            gateway.submit(make_job(i, "bulk"))
        risky = gateway.submit(make_job(9, "slo"), deadline_s=0.0)
        assert risky.admitted

        risky_sub = gateway.queue.get(risky.job_id)
        assert gateway.at_risk(risky_sub)
        order = [sub.job_id
                 for sub in gateway.queue.pop_fair(key=gateway.rank)]
        # lowest priority, lowest weight, submitted last — yet first out
        assert order[0] == risky.job_id

    def test_generous_deadline_is_not_at_risk(self):
        gateway = ServingGateway(tenants=[TenantSpec("t")],
                                 devices=(V100,), max_width=2)
        ticket = gateway.submit(make_job(0, "t"), deadline_s=3600.0)
        assert not gateway.at_risk(gateway.queue.get(ticket.job_id))


class TestPreemption:
    def test_at_risk_job_preempts_over_share_tenant_and_both_resume_exact(
            self):
        """A width-4 array is full of one tenant's work when a
        deadline-at-risk job arrives mid-flight: the fleet detaches the
        hog's lowest slot (state moved wholesale), boards the SLO job,
        and *every* checkpoint — preempted, at-risk, and bystander —
        still matches serial training."""
        gateway = ServingGateway(
            tenants=[TenantSpec("hog", weight=1.0, priority=0),
                     TenantSpec("slo", weight=1.0, priority=2)],
            devices=(V100,), max_width=4)

        steps = 8
        slo_job = make_job(99, "slo", steps=steps)
        slo_ticket = []

        def submit_slo(epochs, curve):
            # fires at the first epoch boundary, while the array is full
            if epochs == 1 and not slo_ticket:
                slo_ticket.append(gateway.submit(slo_job, deadline_s=0.0))
            return False

        hog_jobs = [make_job(i, "hog", steps=steps,
                             stop=submit_slo if i == 0 else None)
                    for i in range(4)]
        hog_ids = [gateway.submit(job).job_id for job in hog_jobs]
        results = gateway.run_until_idle()

        assert slo_ticket and slo_ticket[0].admitted
        slo_id = slo_ticket[0].job_id
        assert gateway.metrics.jobs_preempted == 1
        summary = gateway.metrics.tenant_summary()
        assert summary["hog"]["preempted"] == 1

        assert set(results) == set(hog_ids) | {slo_id}
        preempted = [results[i] for i in hog_ids
                     if results[i].preemptions > 0]
        assert len(preempted) == 1
        # the preempted slot trained its full budget in its own array
        assert preempted[0].steps_trained == steps
        assert preempted[0].array_id != results[slo_id].array_id

        for job, job_id in list(zip(hog_jobs, hog_ids)) + \
                [(slo_job, slo_id)]:
            assert results[job_id].steps_trained == steps
            assert_checkpoint_matches(results[job_id], job)

    def test_structural_mismatch_never_triggers_preemption(self):
        """Regression: an at-risk job whose cheap admission profile
        matches a full array but whose model structure does not must not
        cost any running slot its width — the structural check runs
        before victims are nominated."""
        gateway = ServingGateway(
            tenants=[TenantSpec("hog", weight=1.0, priority=0),
                     TenantSpec("slo", weight=1.0, priority=2)],
            devices=(V100,), max_width=4)

        steps = 6
        # same name signature/optimizer/loss, different architecture
        alien = TrainingJob(
            name="job50_lr0.001", seed=50, steps=steps,
            config={"lr": 1e-3, "optimizer": "adam"},
            build_model=lambda B=None, g=None: TinyMLP(16, B, g),
            data=stream(1050, steps), tenant="slo")
        fired = []

        def submit_alien(epochs, curve):
            if epochs == 1 and not fired:
                fired.append(gateway.submit(alien, deadline_s=0.0))
            return False

        jobs = [make_job(i, "hog", steps=steps,
                         stop=submit_alien if i == 0 else None)
                for i in range(4)]
        ids = [gateway.submit(job).job_id for job in jobs]
        results = gateway.run_until_idle()

        assert gateway.metrics.jobs_preempted == 0
        assert all(results[i].preemptions == 0 for i in ids)
        # the alien still trains — in its own array, next cycle
        assert results[fired[0].job_id].steps_trained == steps

    def test_direct_submissions_rank_behind_admitted_backlog(self):
        """Regression: a job that bypassed the gateway has no virtual
        time; it must not leapfrog weight-paying tenants of its class."""
        gateway = ServingGateway(tenants=[TenantSpec("t")],
                                 devices=(V100,), max_width=2)
        free_rider = make_job(0, tenant="legacy")
        direct_id = gateway.fleet.submit(free_rider)
        paying = [gateway.submit(make_job(1 + i, "t")).job_id
                  for i in range(3)]
        order = [sub.job_id
                 for sub in gateway.queue.pop_fair(key=gateway.rank)]
        assert order == paying + [direct_id]

    def test_no_preemption_without_deadline_pressure(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("a"), TenantSpec("b", priority=2)],
            devices=(V100,), max_width=4)
        for i in range(4):
            gateway.submit(make_job(i, "a"))
        gateway.submit(make_job(9, "b"))   # high priority, no deadline
        results = gateway.run_until_idle()
        assert len(results) == 5
        assert gateway.metrics.jobs_preempted == 0

    def test_slo_carrying_slots_are_never_victims(self):
        """Both tenants carry deadlines: even under pressure the victim
        picker refuses to trade one SLO for another."""
        gateway = ServingGateway(
            tenants=[TenantSpec("a", deadline_s=3600.0),
                     TenantSpec("b", priority=2)],
            devices=(V100,), max_width=2)
        late = make_job(9, "b")
        fired = []

        def submit_late(epochs, curve):
            if epochs == 1 and not fired:
                fired.append(gateway.submit(late, deadline_s=0.0))
            return False

        jobs = [make_job(i, "a", steps=6,
                         stop=submit_late if i == 0 else None)
                for i in range(2)]
        ids = [gateway.submit(job).job_id for job in jobs]
        results = gateway.run_until_idle()
        assert gateway.metrics.jobs_preempted == 0
        assert set(results) == set(ids) | {fired[0].job_id}


class TestSLOAccounting:
    def test_generous_deadlines_score_hits(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("t", deadline_s=600.0)],
            devices=(V100,), max_width=4)
        for i in range(3):
            gateway.submit(make_job(i, "t"))
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["slo_hits"] == 3
        assert summary["t"]["slo_misses"] == 0
        assert summary["t"]["slo_rate"] == 1.0

    def test_blown_deadline_scores_a_miss(self):
        gateway = ServingGateway(tenants=[TenantSpec("t")],
                                 devices=(V100,), max_width=4)
        gateway.submit(make_job(0, "t"), deadline_s=0.0)
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["slo_misses"] == 1

    def test_manual_clock_scores_slo_in_gateway_coordinates(self):
        """Regression: JobResult.finished_at is time.monotonic(), but a
        manual gateway clock starts at 0 — settlement must translate
        between the two or every deadline reads as blown."""
        clock, _ = manual_clock()
        gateway = ServingGateway(tenants=[TenantSpec("t")],
                                 devices=(V100,), max_width=4, clock=clock)
        gateway.submit(make_job(0, "t"), deadline_s=600.0)
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["slo_hits"] == 1
        assert summary["t"]["slo_misses"] == 0

    def test_cancelled_deadline_job_scores_neither_hit_nor_miss(self):
        """Regression: a voluntarily withdrawn job is not a completion —
        cancelling after the deadline must not log an SLO miss."""
        gateway = ServingGateway(tenants=[TenantSpec("t")],
                                 devices=(V100,), max_width=4)
        victim = []

        def cancel_victim(epochs, curve):
            if epochs >= 2:
                gateway.fleet.cancel(victim[0])
            return False

        doomed = gateway.submit(make_job(0, "t", steps=6),
                                deadline_s=0.0)   # already blown
        victim.append(doomed.job_id)
        gateway.submit(make_job(1, "t", steps=6, stop=cancel_victim))
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["slo_hits"] == 0
        assert summary["t"]["slo_misses"] == 0

    def test_slo_settles_once_across_repeated_drains(self):
        gateway = ServingGateway(
            tenants=[TenantSpec("t", deadline_s=600.0)],
            devices=(V100,), max_width=4)
        gateway.submit(make_job(0, "t"))
        gateway.run_until_idle()
        gateway.submit(make_job(1, "t"))
        gateway.run_until_idle()
        summary = gateway.metrics.tenant_summary()
        assert summary["t"]["slo_hits"] == 2


class TestTenantIsolation:
    def test_isolated_tenants_never_share_an_array(self):
        queue = JobQueue()
        for i in range(4):
            queue.submit(make_job(i, tenant="a" if i % 2 else "b"))
        batch = queue.pop_pending()

        cohorts, failures = Batcher().form_cohorts(batch)
        assert not failures
        assert len(cohorts) == 1            # default: packs across tenants

        for sub in batch:
            sub.profile_cache = None        # profiles are batcher-specific
        isolated, failures = Batcher(
            tenant_isolation=True).form_cohorts(batch)
        assert not failures
        assert len(isolated) == 2
        for cohort in isolated:
            assert len({sub.job.tenant for sub in cohort.jobs}) == 1

    def test_isolation_splits_admission_profiles_too(self):
        queue = JobQueue()
        ids = [queue.submit(make_job(i, tenant="a" if i else "b"))
               for i in range(2)]
        subs = [queue.get(i) for i in ids]
        shared = Batcher()
        assert shared.admission_profile(subs[0]) == \
            shared.admission_profile(subs[1])
        for sub in subs:
            sub.profile_cache = None
        isolated = Batcher(tenant_isolation=True)
        assert isolated.admission_profile(subs[0]) != \
            isolated.admission_profile(subs[1])


class TestTenantSpecValidation:
    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError, match="rate"):
            TenantSpec("t", rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            TenantSpec("t", burst=0)
        with pytest.raises(ValueError, match="quota_steps"):
            TenantSpec("t", quota_steps=-1)

    def test_unknown_tenant_autoregisters_best_effort(self):
        gateway = ServingGateway(devices=(V100,), max_width=4)
        ticket = gateway.submit(make_job(0, "walk-in"))
        assert ticket.admitted
        assert gateway.tenant("walk-in").weight == 1.0

    def test_settled_terminal_jobs_are_pruned_from_tracking(self):
        gateway = ServingGateway(tenants=[TenantSpec("t",
                                                     deadline_s=600.0)],
                                 devices=(V100,), max_width=4)
        for i in range(3):
            gateway.submit(make_job(i, "t"))
        gateway.run_until_idle()
        assert gateway._tracked == {}          # history does not accrete
        assert gateway.in_flight_steps("t") == 0

    def test_gateway_rejects_fleet_plus_fleet_kwargs(self):
        from repro.runtime import FleetScheduler
        fleet = FleetScheduler(devices=(V100,), max_width=2)
        with pytest.raises(ValueError, match="not both"):
            ServingGateway(fleet=fleet, max_width=4)
