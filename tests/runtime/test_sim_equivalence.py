"""Real-vs-sim equivalence: both backends make the same decisions.

The simulation backend's value rests on one claim: only the *physics*
(tensor math, wall clock) are swapped out — every scheduling decision
runs through the identical control plane.  This suite pins the claim
down: the same 20-job trace, submitted to a real fleet and to a sim
fleet under a fixed seed, must produce the **identical sequence of
scheduling decisions** — same dequeue order, same placements, same
freed-width admissions, same retirement order with the same per-job
trained-step counts.

The fleets are single-device so the real backend's worker threading
cannot permute decision interleavings (within one worker, and in the
main scheduling loop, both backends are strictly sequential); the jobs
are budget-only (no loss-driven stop signals) because synthetic sim
losses and real training losses legitimately diverge — *when* a
target-loss stop fires is physics, not scheduling.
"""

import numpy as np

from repro.hwsim import V100
from repro.runtime import FleetScheduler, RuntimeMetrics, TrainingJob

from .conftest import SIM_CLASSES, SIM_FEATURES, build_sim_model

JOBS = 20
BATCH = 4


def real_stream(seed, steps):
    rng = np.random.default_rng(seed)
    batches = [(rng.standard_normal((BATCH, SIM_FEATURES))
                .astype(np.float32),
                rng.integers(0, SIM_CLASSES, size=BATCH))
               for _ in range(steps)]
    return lambda step: batches[step]


def make_trace_jobs():
    """20 budget-only jobs with heterogeneous step budgets, so slots
    retire at different epochs and freed-width admissions fire."""
    jobs = []
    for i in range(JOBS):
        steps = 4 if i % 3 else 8
        jobs.append(TrainingJob(
            name=f"eq{i}", build_model=build_sim_model,
            data=real_stream(4_000 + i, steps), steps=steps,
            epoch_steps=2, seed=i))
    return jobs


def run_backend(execution):
    metrics = RuntimeMetrics()
    metrics.enable_decision_log()
    fleet = FleetScheduler(devices=(V100,), max_width=4,
                           execution=execution, metrics=metrics)
    fleet.submit_all(make_trace_jobs())
    # cap each control cycle's dequeue so a backlog stays queued while
    # arrays run — that is what arms freed-width admissions mid-array
    results = {}
    while fleet.queue.pending_count:
        for result in fleet.run_cycle(8):
            results[result.job_id] = result
    return fleet, results, metrics.decisions()


class TestDecisionEquivalence:
    def test_same_trace_same_decisions_real_vs_sim(self):
        real_fleet, real_results, real_log = run_backend("real")
        sim_fleet, sim_results, sim_log = run_backend("sim")

        # both backends completed the full trace
        assert len(real_results) == len(sim_results) == JOBS
        # decision payloads are time-free (job ids, devices, step counts),
        # so the two logs must match element-for-element
        assert real_log == sim_log
        # sanity: the log is non-trivial — it contains every decision kind
        # the elastic single-device lifecycle can make
        kinds = {kind for kind, _ in real_log}
        assert {"dequeue", "place", "admit", "retire"} <= kinds

    def test_results_agree_on_everything_but_physics(self):
        _, real_results, _ = run_backend("real")
        _, sim_results, _ = run_backend("sim")
        for job_id, real in real_results.items():
            sim = sim_results[job_id]
            assert real.name == sim.name
            assert real.steps_trained == sim.steps_trained
            assert real.array_id == sim.array_id
            assert real.slot == sim.slot
            assert real.stop_reason == sim.stop_reason
            assert len(real.loss_curve) == len(sim.loss_curve)
            assert sim.sim and not real.sim

    def test_sim_decision_log_is_reproducible(self):
        _, _, first = run_backend("sim")
        _, _, second = run_backend("sim")
        assert first == second

    def test_decision_counter_matches_log_length(self):
        metrics = RuntimeMetrics()
        metrics.enable_decision_log()
        fleet = FleetScheduler(devices=(V100,), max_width=4,
                               execution="sim", metrics=metrics)
        fleet.submit_all(make_trace_jobs())
        fleet.run_until_idle()
        # the counter counts affected jobs; the log counts decision
        # events — every logged event accounts for >= 1 counted job
        assert metrics.scheduler_decisions >= len(metrics.decisions())
        assert metrics.decisions("dequeue")
