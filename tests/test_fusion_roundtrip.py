"""Fusion round-trip: ``load_from_unfused`` -> ``export_to_unfused`` is exact.

The runtime hands every finished job a checkpoint extracted from a fused
array, so the import/export pair must be lossless: each unfused model's
parameters *and* buffers must come back bit-exactly, for a model mixing the
three parameter-carrying operator families (conv + batch norm + linear).
"""

import numpy as np
import pytest

from repro import hfta, nn
from repro.hfta import ops as hops

B = 3


def build_serial(seed, channels=4):
    gen = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(3, channels, 3, padding=1, generator=gen),
        nn.BatchNorm2d(channels),
        nn.ReLU(), nn.AdaptiveAvgPool2d(1))


def build_fused(num_models, channels=4):
    return nn.Sequential(
        hops.Conv2d(num_models, 3, channels, 3, padding=1),
        hops.BatchNorm2d(num_models, channels),
        hops.ReLU(num_models), hops.AdaptiveAvgPool2d(num_models, 1))


def perturb_buffers(models):
    """Give every model distinct batch-norm running stats (fresh models all
    start from the same zeros/ones, which would hide indexing bugs)."""
    for i, model in enumerate(models):
        for name, buf in model.named_buffers():
            if buf is not None and np.issubdtype(buf.dtype, np.floating):
                buf += np.arange(buf.size, dtype=buf.dtype).reshape(buf.shape) \
                    * (i + 1)


class TestRoundTrip:
    def test_conv_bn_linear_roundtrip_is_bit_exact(self):
        serial = [build_serial(seed) for seed in range(B)]
        heads = [nn.Linear(4, 2, generator=np.random.default_rng(50 + b))
                 for b in range(B)]
        perturb_buffers(serial)

        fused = build_fused(B)
        fused_head = hops.Linear(B, 4, 2)
        hfta.load_from_unfused(fused, serial)
        hfta.load_from_unfused(fused_head, heads)

        for b in range(B):
            template = build_serial(seed=999)   # weights will be overwritten
            head_template = nn.Linear(4, 2)
            hfta.export_to_unfused(fused, b, template)
            hfta.export_to_unfused(fused_head, b, head_template)

            for (name, p_out), (_, p_in) in zip(
                    template.named_parameters(),
                    serial[b].named_parameters()):
                np.testing.assert_array_equal(
                    p_out.data, p_in.data,
                    err_msg=f"model {b} parameter {name}")
            for (name, b_out), (_, b_in) in zip(template.named_buffers(),
                                                serial[b].named_buffers()):
                if b_in is None:
                    continue
                np.testing.assert_array_equal(
                    b_out, b_in, err_msg=f"model {b} buffer {name}")
            for (name, p_out), (_, p_in) in zip(
                    head_template.named_parameters(),
                    heads[b].named_parameters()):
                np.testing.assert_array_equal(
                    p_out.data, p_in.data,
                    err_msg=f"model {b} head parameter {name}")

    def test_load_rejects_wrong_array_width(self):
        serial = [build_serial(seed) for seed in range(B)]
        too_narrow = build_fused(B - 1)
        with pytest.raises(ValueError, match="fused shape"):
            hfta.load_from_unfused(too_narrow, serial)


class TestValidateFusibility:
    def test_accepts_identical_structures(self):
        models = [build_serial(seed) for seed in range(B)]
        assert hfta.validate_fusibility(models)
        assert hfta.is_fusible(models)
        assert hfta.fusibility_error(models) is None

    def test_rejects_shape_mismatch(self):
        models = [build_serial(0), build_serial(1, channels=8)]
        with pytest.raises(ValueError, match="shape mismatch"):
            hfta.validate_fusibility(models)
        assert not hfta.is_fusible(models)
        assert "shape mismatch" in hfta.fusibility_error(models)

    def test_rejects_different_structure(self):
        cnn = build_serial(0)
        mlp = nn.Sequential(nn.Linear(3, 4), nn.ReLU())
        with pytest.raises(ValueError, match="different module structure"):
            hfta.validate_fusibility([cnn, mlp])
        assert not hfta.is_fusible([cnn, mlp])

    def test_prefix_parameter_mismatch_is_reported_not_raised(self):
        """Same module structure, but one model's parameter list is a strict
        prefix of the other's (bias present in only one): the predicate must
        stay non-throwing and the validator must raise ValueError."""
        with_bias = nn.Sequential(nn.Linear(4, 3))
        without_bias = nn.Sequential(nn.Linear(4, 3, bias=False))
        models = [with_bias, without_bias]
        assert not hfta.is_fusible(models)
        assert "parameters" in hfta.fusibility_error(models)
        with pytest.raises(ValueError, match="parameters"):
            hfta.validate_fusibility(models)

    def test_structural_signature_is_a_grouping_key(self):
        same = {hfta.structural_signature(build_serial(s)) for s in range(3)}
        assert len(same) == 1
        assert hfta.structural_signature(build_serial(0)) != \
            hfta.structural_signature(build_serial(0, channels=8))
