"""Unit tests for the Tensor/autograd core."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.nn.tensor import no_grad


def t64(arr, requires_grad=True):
    return nn.tensor(np.asarray(arr, dtype=np.float64),
                     requires_grad=requires_grad)


class TestConstruction:
    def test_python_scalars_default_to_float32(self):
        assert nn.tensor([1.0, 2.0]).dtype == np.float32

    def test_float64_arrays_preserved(self):
        assert nn.tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_zeros_ones_full(self):
        assert nn.zeros(2, 3).shape == (2, 3)
        assert np.all(nn.ones(4).data == 1.0)
        assert np.all(nn.full((2, 2), 7.0).data == 7.0)

    def test_randn_with_generator_is_deterministic(self):
        a = nn.randn(5, generator=np.random.default_rng(0))
        b = nn.randn(5, generator=np.random.default_rng(0))
        np.testing.assert_array_equal(a.data, b.data)

    def test_numel_and_len(self):
        t = nn.zeros(3, 4)
        assert t.numel() == 12
        assert len(t) == 3


class TestArithmeticBackward:
    def test_add_broadcast_backward(self):
        a = t64(np.ones((2, 3)))
        b = t64(np.ones(3))
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_backward(self):
        a = t64([2.0, 3.0])
        b = t64([5.0, 7.0])
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div_backward(self):
        a = t64([4.0])
        b = t64([2.0])
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = t64([3.0])
        (a ** 3).backward()
        np.testing.assert_allclose(a.grad, [27.0])

    def test_matmul_backward(self):
        a = t64(np.random.default_rng(0).standard_normal((3, 4)))
        b = t64(np.random.default_rng(1).standard_normal((4, 5)))
        a.matmul(b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T,
                                   rtol=1e-6)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)),
                                   rtol=1e-6)

    def test_reused_tensor_accumulates_gradient(self):
        a = t64([2.0])
        ((a * a) + a).backward()
        np.testing.assert_allclose(a.grad, [5.0])  # 2a + 1

    def test_scalar_backward_requires_scalar(self):
        a = t64(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = nn.tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        a = t64(np.arange(12, dtype=np.float64).reshape(3, 4))
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))

    def test_mean_matches_numpy(self):
        a = t64(np.arange(6, dtype=np.float64).reshape(2, 3))
        np.testing.assert_allclose(a.mean(axis=0).data,
                                   a.data.mean(axis=0))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal((4, 5))
        np.testing.assert_allclose(t64(data).var(axis=1).data,
                                   data.var(axis=1), rtol=1e-6)

    def test_max_backward_routes_to_argmax(self):
        a = t64([[1.0, 5.0, 2.0]])
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_and_permute_backward(self):
        a = t64(np.arange(24, dtype=np.float64).reshape(2, 3, 4))
        out = a.permute(2, 0, 1).reshape(4, 6)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_transpose_swaps_dims(self):
        a = nn.zeros(2, 5)
        assert a.transpose(0, 1).shape == (5, 2)

    def test_unsqueeze_squeeze(self):
        a = nn.zeros(3, 4)
        assert a.unsqueeze(1).shape == (3, 1, 4)
        assert a.unsqueeze(1).squeeze(1).shape == (3, 4)

    def test_expand_backward_sums(self):
        a = t64(np.ones((1, 3)))
        a.expand(4, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 3), 4.0))

    def test_getitem_backward_scatters(self):
        a = t64(np.arange(5, dtype=np.float64))
        a[np.array([0, 0, 3])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 0.0, 1.0, 0.0])

    def test_cat_and_stack_backward(self):
        a, b = t64(np.ones(3)), t64(np.ones(3))
        nn.cat([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        c, d = t64(np.ones(2)), t64(np.ones(2))
        (nn.stack([c, d], axis=0) * 3).sum().backward()
        np.testing.assert_allclose(d.grad, np.full(2, 3.0))


class TestElementwise:
    def test_exp_log_roundtrip_backward(self):
        a = t64([0.5, 1.5])
        a.exp().log().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0], rtol=1e-6)

    def test_sigmoid_range_and_grad(self):
        a = t64([0.0])
        s = a.sigmoid()
        np.testing.assert_allclose(s.data, [0.5])
        s.sum().backward()
        np.testing.assert_allclose(a.grad, [0.25])

    def test_relu_kills_negative_gradient(self):
        a = t64([-1.0, 2.0])
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_clamp_gradient_mask(self):
        a = t64([-2.0, 0.5, 9.0])
        a.clamp(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_sign(self):
        a = t64([-3.0, 4.0])
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = t64([1.0])
        with no_grad():
            out = a * 2 + 1
        assert not out.requires_grad
        assert out._backward is None

    def test_detach_breaks_graph(self):
        a = t64([1.0])
        out = (a * 2).detach()
        assert not out.requires_grad


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=8),
       st.lists(st.floats(-10, 10), min_size=1, max_size=8))
def test_property_add_commutes(xs, ys):
    """x + y == y + x for arbitrary broadcast-compatible 1-D tensors."""
    n = min(len(xs), len(ys))
    a, b = nn.tensor(xs[:n]), nn.tensor(ys[:n])
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5))
def test_property_matmul_shapes(m, n):
    """Matmul output shape follows (m, k) @ (k, n) -> (m, n)."""
    a = nn.zeros(m, 3)
    b = nn.zeros(3, n)
    assert a.matmul(b).shape == (m, n)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=2, max_size=16))
def test_property_softmax_normalizes(xs):
    """softmax output sums to one and is non-negative."""
    from repro.nn import functional as F
    out = F.softmax(nn.tensor(xs)).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-4)
