"""Gradient checks and behavioural tests for the functional ops."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from ..conftest import numerical_gradient

rng = np.random.default_rng(7)


def t64(shape):
    return nn.tensor(rng.standard_normal(shape), requires_grad=True)


def check_grads(build, params, tol=1e-5):
    """Verify autograd gradients of 0.5*sum(out^2) against finite differences."""
    out = build()
    ((out * out).sum() * 0.5).backward()
    for p in params:
        num = numerical_gradient(
            lambda: float((build().data ** 2).sum()) * 0.5, p)
        np.testing.assert_allclose(p.grad, num, rtol=tol, atol=tol)


class TestConvolutions:
    @pytest.mark.parametrize("stride,padding,groups", [
        (1, 0, 1), (2, 1, 1), (1, 1, 2), (2, 0, 2)])
    def test_conv2d_gradients(self, stride, padding, groups):
        x = t64((2, 4, 6, 6))
        w = t64((6, 4 // groups, 3, 3))
        b = t64((6,))
        check_grads(lambda: F.conv2d(x, w, b, stride, padding, groups=groups),
                    [x, w, b])

    def test_conv2d_output_shape(self):
        x = nn.zeros(1, 3, 8, 8)
        w = nn.zeros(5, 3, 3, 3)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 5, 4, 4)

    def test_conv2d_groups_channel_independence(self):
        """With groups=2, group-0 outputs must not depend on group-1 inputs."""
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        base = F.conv2d(nn.tensor(x), nn.tensor(w), groups=2).data
        x2 = x.copy()
        x2[:, 2:] += 100.0   # perturb only the second group's inputs
        out2 = F.conv2d(nn.tensor(x2), nn.tensor(w), groups=2).data
        np.testing.assert_allclose(base[:, :2], out2[:, :2], rtol=1e-5)
        assert not np.allclose(base[:, 2:], out2[:, 2:])

    def test_conv2d_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            F.conv2d(nn.zeros(1, 3, 4, 4), nn.zeros(4, 3, 3, 3), groups=2)

    def test_conv1d_matches_manual(self):
        x = nn.tensor(rng.standard_normal((2, 3, 10)).astype(np.float32))
        w = nn.tensor(rng.standard_normal((5, 3, 1)).astype(np.float32))
        out = F.conv1d(x, w)
        manual = np.einsum("ncl,oc->nol", x.data, w.data[:, :, 0])
        np.testing.assert_allclose(out.data, manual, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("stride,padding,groups", [(1, 0, 1), (2, 1, 2)])
    def test_conv_transpose2d_gradients(self, stride, padding, groups):
        x = t64((1, 4, 4, 4))
        w = t64((4, 3 // 1 if groups == 1 else 2, 3, 3))
        check_grads(lambda: F.conv_transpose2d(
            x, w, None, stride, padding, groups=groups), [x, w])

    def test_conv_transpose2d_inverts_conv_shape(self):
        x = nn.zeros(1, 8, 5, 5)
        w = nn.zeros(8, 4, 4, 4)
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 4, 10, 10)


class TestPooling:
    def test_max_pool2d_values(self):
        x = nn.tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2, 2)
        np.testing.assert_allclose(out.data.reshape(-1), [5, 7, 13, 15])

    def test_max_pool2d_gradient(self):
        x = t64((1, 2, 4, 4))
        check_grads(lambda: F.max_pool2d(x, 2, 2), [x])

    def test_avg_pool2d_is_mean(self):
        x = nn.tensor(np.ones((1, 1, 4, 4), dtype=np.float32))
        np.testing.assert_allclose(F.avg_pool2d(x, 2).data,
                                   np.ones((1, 1, 2, 2)))

    def test_adaptive_avg_pool_global(self):
        x = nn.tensor(rng.standard_normal((2, 3, 5, 5)).astype(np.float32))
        out = F.adaptive_avg_pool2d(x, 1)
        np.testing.assert_allclose(out.data.reshape(2, 3),
                                   x.data.mean(axis=(2, 3)), rtol=1e-5)

    def test_adaptive_avg_pool_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(nn.zeros(1, 1, 5, 5), 2)


class TestNormalization:
    def test_batch_norm_normalizes_training(self):
        x = nn.tensor(rng.standard_normal((64, 8)).astype(np.float32) * 5 + 3)
        out = F.batch_norm(x, None, None, None, None, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_batch_norm_updates_running_stats(self):
        mean = np.zeros(4, dtype=np.float32)
        var = np.ones(4, dtype=np.float32)
        x = nn.tensor(np.full((8, 4), 10.0, dtype=np.float32))
        F.batch_norm(x, mean, var, None, None, training=True, momentum=0.5)
        assert np.all(mean > 0)

    def test_batch_norm_eval_uses_running_stats(self):
        mean = np.full(4, 2.0, dtype=np.float32)
        var = np.full(4, 4.0, dtype=np.float32)
        x = nn.tensor(np.full((2, 4), 4.0, dtype=np.float32))
        out = F.batch_norm(x, mean, var, None, None, training=False)
        np.testing.assert_allclose(out.data, 1.0, atol=1e-3)

    def test_layer_norm_gradients(self):
        x = t64((3, 6))
        w = t64((6,))
        b = t64((6,))
        check_grads(lambda: F.layer_norm(x, (6,), w, b), [x, w, b], tol=1e-4)


class TestEmbeddingDropoutActivations:
    def test_embedding_lookup_and_grad(self):
        w = t64((10, 4))
        idx = np.array([[1, 2], [2, 3]])
        out = F.embedding(idx, w)
        assert out.shape == (2, 2, 4)
        out.sum().backward()
        assert w.grad[2].sum() == pytest.approx(8.0)  # row 2 used twice
        assert w.grad[0].sum() == 0.0

    def test_dropout_eval_is_identity(self):
        x = nn.tensor(np.ones((4, 4), dtype=np.float32))
        np.testing.assert_array_equal(F.dropout(x, 0.5, training=False).data,
                                      x.data)

    def test_dropout_preserves_expectation(self):
        gen = np.random.default_rng(0)
        x = nn.tensor(np.ones((2000,), dtype=np.float32))
        out = F.dropout(x, 0.25, training=True, generator=gen)
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_dropout2d_zeroes_whole_channels(self):
        gen = np.random.default_rng(0)
        x = nn.tensor(np.ones((4, 8, 3, 3), dtype=np.float32))
        out = F.dropout2d(x, 0.5, training=True, generator=gen).data
        per_channel = out.reshape(4, 8, -1)
        for n in range(4):
            for c in range(8):
                vals = np.unique(per_channel[n, c])
                assert len(vals) == 1  # all-zero or all-scaled

    def test_relu6_clips(self):
        x = nn.tensor(np.array([-1.0, 3.0, 9.0], dtype=np.float32))
        np.testing.assert_allclose(F.relu6(x).data, [0.0, 3.0, 6.0])

    def test_hardswish_known_points(self):
        x = nn.tensor(np.array([-4.0, 0.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose(F.hardswish(x).data, [0.0, 0.0, 4.0])

    def test_gelu_monotone_near_origin(self):
        x = nn.tensor(np.array([-1.0, 0.0, 1.0], dtype=np.float32))
        out = F.gelu(x).data
        assert out[0] < out[1] < out[2]

    def test_leaky_relu_slope(self):
        x = t64((5,))
        out = F.leaky_relu(x, 0.1)
        expected = np.where(x.data > 0, x.data, 0.1 * x.data)
        np.testing.assert_allclose(out.data, expected)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = nn.tensor(rng.standard_normal((4, 5)).astype(np.float32))
        target = np.array([0, 1, 2, 3])
        loss = F.cross_entropy(logits, target)
        probs = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(4), target]).mean()
        assert loss.item() == pytest.approx(manual, rel=1e-5)

    def test_nll_loss_reductions(self):
        lp = nn.tensor(np.log(np.full((2, 3), 1 / 3, dtype=np.float32)))
        target = np.array([0, 1])
        assert F.nll_loss(lp, target, "sum").item() == pytest.approx(
            2 * np.log(3), rel=1e-5)
        assert F.nll_loss(lp, target, "mean").item() == pytest.approx(
            np.log(3), rel=1e-5)

    def test_cross_entropy_gradients(self):
        logits = t64((3, 4))
        target = np.array([1, 0, 3])
        loss = F.cross_entropy(logits, target)
        loss.backward()
        probs = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(3), target] -= 1
        np.testing.assert_allclose(logits.grad, expected / 3, rtol=1e-5,
                                   atol=1e-6)

    def test_mse_loss(self):
        pred = nn.tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert F.mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_bce_loss_bounds(self):
        prob = nn.tensor(np.array([0.9, 0.1], dtype=np.float32))
        loss = F.binary_cross_entropy(prob, np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(-np.log(0.9), rel=1e-4)

    def test_segmentation_nll_shape(self):
        """nll_loss handles [N, C, P] predictions (PointNet segmentation)."""
        lp = F.log_softmax(nn.tensor(
            rng.standard_normal((2, 5, 7)).astype(np.float32)), axis=1)
        target = rng.integers(0, 5, size=(2, 7))
        loss = F.nll_loss(lp, target)
        assert np.isfinite(loss.item())
