"""Tests for the unfused optimizers and LR schedulers."""

import numpy as np
import pytest

from repro import nn, optim
from repro.nn import functional as F


def quadratic_param(value=5.0):
    return nn.tensor(np.array([value], dtype=np.float64), requires_grad=True)


def step_once(opt, p):
    opt.zero_grad()
    (p * p).sum().backward()
    opt.step()


class TestSGD:
    def test_plain_sgd_descends(self):
        p = quadratic_param()
        opt = optim.SGD([p], lr=0.1)
        for _ in range(50):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        p_plain, p_momentum = quadratic_param(), quadratic_param()
        plain = optim.SGD([p_plain], lr=0.01)
        mom = optim.SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            step_once(plain, p_plain)
            step_once(mom, p_momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = nn.tensor(np.array([1.0]), requires_grad=True)
        opt = optim.SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            optim.SGD([quadratic_param()], lr=-1.0)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            optim.SGD([quadratic_param()], lr=0.1, nesterov=True)


class TestAdamFamily:
    def test_adam_converges_on_quadratic(self):
        p = quadratic_param()
        opt = optim.Adam([p], lr=0.5)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 5e-2

    def test_adam_bias_correction_first_step(self):
        p = nn.tensor(np.array([1.0]), requires_grad=True)
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        # with bias correction the first update magnitude is ~lr
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-3)

    def test_adamw_decoupled_decay(self):
        p_adam = nn.tensor(np.array([1.0]), requires_grad=True)
        p_adamw = nn.tensor(np.array([1.0]), requires_grad=True)
        a = optim.Adam([p_adam], lr=0.0, weight_decay=0.5)
        w = optim.AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        p_adam.grad = np.zeros(1, dtype=np.float32)
        p_adamw.grad = np.zeros(1, dtype=np.float32)
        a.step(); w.step()
        assert p_adam.data[0] == pytest.approx(1.0)      # lr=0 -> no update
        assert p_adamw.data[0] < 1.0                     # decoupled decay applied

    def test_adadelta_makes_steady_progress(self):
        # Adadelta's effective step starts tiny (acc_delta is zero), so check
        # monotone descent rather than full convergence in few steps.
        p = quadratic_param()
        opt = optim.Adadelta([p], lr=1.0, rho=0.9)
        trajectory = [abs(p.data[0])]
        for _ in range(300):
            step_once(opt, p)
            trajectory.append(abs(p.data[0]))
        assert trajectory[-1] < 0.8 * trajectory[0]
        assert all(b <= a + 1e-9 for a, b in zip(trajectory, trajectory[1:]))

    def test_adam_invalid_betas(self):
        with pytest.raises(ValueError):
            optim.Adam([quadratic_param()], betas=(1.5, 0.9))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            optim.Adam([], lr=0.1)

    def test_skips_parameters_without_grad(self):
        p = quadratic_param()
        opt = optim.Adam([p], lr=0.1)
        opt.step()  # no grad yet: should be a no-op, not an error
        assert p.data[0] == 5.0


class TestSchedulers:
    def _opt(self, lr=1.0):
        return optim.SGD([quadratic_param()], lr=lr)

    def test_step_lr_decays_every_period(self):
        opt = self._opt()
        sched = optim.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(5):
            lrs.append(opt.lr)
            sched.step()
        np.testing.assert_allclose(lrs, [1.0, 1.0, 0.1, 0.1, 0.01], rtol=1e-6)

    def test_exponential_lr(self):
        opt = self._opt()
        sched = optim.ExponentialLR(opt, gamma=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_cosine_annealing_reaches_eta_min(self):
        opt = self._opt()
        sched = optim.CosineAnnealingLR(opt, T_max=10, eta_min=0.1)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_get_last_lr(self):
        opt = self._opt(lr=2.0)
        sched = optim.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert sched.get_last_lr() == [pytest.approx(1.0)]


class TestEndToEndTraining:
    def test_small_mlp_learns_xor(self):
        rng = np.random.default_rng(0)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32)
        y = np.array([0, 1, 1, 0])
        model = nn.Sequential(
            nn.Linear(2, 16, generator=rng), nn.Tanh(),
            nn.Linear(16, 2, generator=rng))
        opt = optim.Adam(model.parameters(), lr=0.05)
        first_loss = None
        for step in range(300):
            opt.zero_grad()
            loss = F.cross_entropy(model(nn.tensor(x)), y)
            loss.backward()
            opt.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.1 < first_loss
        preds = model(nn.tensor(x)).argmax(axis=1)
        np.testing.assert_array_equal(preds, y)
