"""Tests for the module system and layer zoo."""

import numpy as np
import pytest

from repro import nn

rng = np.random.default_rng(11)


class TestModuleSystem:
    def test_parameter_registration_and_iteration(self):
        layer = nn.Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 4 * 3 + 3

    def test_nested_module_parameter_names(self):
        model = nn.Sequential(nn.Linear(2, 4), nn.ReLU(), nn.Linear(4, 1))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        layer = nn.Linear(3, 2)
        out = layer(nn.randn(4, 3)).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Linear(3, 3), nn.BatchNorm1d(3))
        b = nn.Sequential(nn.Linear(3, 3), nn.BatchNorm1d(3))
        b.load_state_dict(a.state_dict())
        for (n1, p1), (n2, p2) in zip(a.named_parameters(),
                                      b.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_strict_rejects_unknown_keys(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nonexistent": np.zeros(2)})

    def test_buffers_are_tracked(self):
        bn = nn.BatchNorm2d(4)
        buffer_names = [n for n, _ in bn.named_buffers()]
        assert "running_mean" in buffer_names and "running_var" in buffer_names

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(ml[0].parameters())) == 2

    def test_sequential_indexing_and_append(self):
        seq = nn.Sequential(nn.Linear(2, 2))
        seq.append(nn.ReLU())
        assert isinstance(seq[1], nn.ReLU)
        assert len(seq) == 2

    def test_identity_passthrough(self):
        x = nn.randn(2, 3)
        np.testing.assert_array_equal(nn.Identity()(x).data, x.data)


class TestLayers:
    def test_linear_shapes_and_no_bias(self):
        layer = nn.Linear(6, 4, bias=False)
        assert layer.bias is None
        assert layer(nn.randn(5, 6)).shape == (5, 4)

    def test_conv2d_depthwise(self):
        conv = nn.Conv2d(4, 4, 3, padding=1, groups=4)
        assert conv.weight.shape == (4, 1, 3, 3)
        assert conv(nn.randn(2, 4, 8, 8)).shape == (2, 4, 8, 8)

    def test_conv1d_forward_shape(self):
        conv = nn.Conv1d(3, 16, 1)
        assert conv(nn.randn(2, 3, 50)).shape == (2, 16, 50)

    def test_conv_transpose2d_upsamples(self):
        deconv = nn.ConvTranspose2d(8, 4, 4, stride=2, padding=1)
        assert deconv(nn.randn(1, 8, 8, 8)).shape == (1, 4, 16, 16)

    def test_conv_rejects_indivisible_groups(self):
        with pytest.raises(ValueError):
            nn.Conv2d(3, 4, 3, groups=2)

    def test_batchnorm2d_shape_validation(self):
        bn = nn.BatchNorm2d(8)
        with pytest.raises(ValueError):
            bn(nn.randn(2, 4, 3, 3))

    def test_batchnorm1d_accepts_2d_and_3d(self):
        bn = nn.BatchNorm1d(6)
        assert bn(nn.randn(4, 6)).shape == (4, 6)
        assert bn(nn.randn(4, 6, 10)).shape == (4, 6, 10)

    def test_layernorm_normalizes_last_dim(self):
        ln = nn.LayerNorm(16)
        out = ln(nn.randn(3, 5, 16))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)

    def test_embedding_output_shape(self):
        emb = nn.Embedding(20, 8)
        assert emb(np.array([[1, 2, 3]])).shape == (1, 3, 8)

    def test_maxpool1d(self):
        pool = nn.MaxPool1d(2)
        x = nn.tensor(np.arange(8, dtype=np.float32).reshape(1, 1, 8))
        np.testing.assert_allclose(pool(x).data.reshape(-1), [1, 3, 5, 7])

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_multihead_attention_shape_and_grad(self):
        attn = nn.MultiheadAttention(16, 4, dropout=0.0)
        x = nn.randn(2, 6, 16, requires_grad=True)
        out = attn(x)
        assert out.shape == (2, 6, 16)
        (out * out).mean().backward()
        assert attn.q_proj.weight.grad is not None

    def test_multihead_attention_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            nn.MultiheadAttention(10, 3)

    def test_transformer_encoder_layer(self):
        layer = nn.TransformerEncoderLayer(16, 2, 32, dropout=0.0)
        out = layer(nn.randn(2, 5, 16))
        assert out.shape == (2, 5, 16)

    def test_loss_modules_match_functional(self):
        logits = nn.randn(4, 6)
        target = rng.integers(0, 6, size=4)
        from repro.nn import functional as F
        assert nn.CrossEntropyLoss()(logits, target).item() == pytest.approx(
            F.cross_entropy(logits, target).item())

    def test_loss_reduction_validation(self):
        with pytest.raises(ValueError):
            nn.MSELoss(reduction="bogus")


class TestInit:
    def test_kaiming_uniform_bounds(self):
        from repro.nn import init
        w = nn.zeros(64, 32)
        init.kaiming_uniform_(w, generator=np.random.default_rng(0))
        assert w.data.std() > 0
        bound = np.sqrt(2.0 / (1 + 5)) * np.sqrt(3.0 / 32)
        assert np.abs(w.data).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        from repro.nn import init
        w = nn.zeros(500, 500)
        init.xavier_normal_(w, generator=np.random.default_rng(0))
        assert w.data.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_constant_and_zeros(self):
        from repro.nn import init
        w = nn.randn(3, 3)
        init.constant_(w, 2.5)
        assert np.all(w.data == 2.5)
        init.zeros_(w)
        assert np.all(w.data == 0)

    def test_calculate_gain(self):
        from repro.nn import init
        assert init.calculate_gain("relu") == pytest.approx(np.sqrt(2))
        with pytest.raises(ValueError):
            init.calculate_gain("not_an_activation")
